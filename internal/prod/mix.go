package prod

import "execrecon/internal/vm"

// Mix builds a machine workload generator that embeds failing requests
// in benign production load: every period-th run (the period-1
// interleaved runs being benign) replays the failing workload under
// its scheduler seed. The returned function is pure in the run index —
// no shared state — so one Mix can drive many machines concurrently.
//
// This is the production-traffic model the corpus experiments use: a
// machine does not exclusively replay its bug; it mostly serves benign
// requests, and the failure reoccurs at a configurable rate (the
// paper's premise that failures recur in production, §2).
func Mix(failing func() *vm.Workload, failSeed int64,
	benign func(i int) *vm.Workload, benignSeed func(i int) int64,
	period int) func(n int) (*vm.Workload, int64) {
	if period < 1 {
		period = 1
	}
	return func(n int) (*vm.Workload, int64) {
		if (n+1)%period == 0 {
			return failing(), failSeed
		}
		return benign(n), benignSeed(n)
	}
}
