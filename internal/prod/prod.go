// Package prod simulates the production deployment of Fig. 2 for the
// efficiency experiments (§5.3): it runs application workloads under
// (a) no monitoring, (b) ER's hardware tracing plus ptwrite data
// recording, and (c) rr-style full record/replay, and converts the
// observed event counts into runtime overhead percentages through a
// calibrated cost model.
//
// Cost model calibration. The VM's cycle model charges each dynamic
// instruction its class cost (internal/vm). Monitoring adds:
//
//   - ER: PTByteCost cycles per trace byte actually written — the
//     memory-bandwidth cost of the PT packet stream, the dominant
//     term of Intel PT's <1% overhead — plus the ptwrite instruction
//     cost already counted by the VM for instrumented binaries.
//   - rr: RRInputCost cycles per intercepted input (the ~µs syscall
//     interception/copy detour rr pays at every read), RRInputByteCost
//     per payload byte, and a serialization penalty of RRSerialFactor
//     × base cycles per additional thread, modelling rr's single-core
//     execution of multithreaded programs.
//
// The constants are calibrated so the shape of Fig. 6 holds (ER well
// under the 10% production boundary with ~0.3% typical; rr tens of
// percent, worst on syscall-heavy and multithreaded applications);
// absolute percentages are not meaningful beyond that shape.
package prod

import (
	"math"

	"execrecon/internal/ir"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

// CostModel holds the monitoring cost constants (cycles).
type CostModel struct {
	PTByteCost      float64
	RRInputCost     float64
	RRInputByteCost float64
	RRSerialFactor  float64
}

// DefaultCostModel returns the calibrated constants.
func DefaultCostModel() CostModel {
	return CostModel{
		PTByteCost:      0.03,
		RRInputCost:     150,
		RRInputByteCost: 1.2,
		RRSerialFactor:  0.5,
	}
}

// Sample is one run's overhead measurement.
type Sample struct {
	BaseCycles  int64
	ExtraCycles float64
	TraceBytes  uint64
	OverheadPct float64
}

// Summary aggregates runs (mean and standard error, as Fig. 6
// reports).
type Summary struct {
	MeanPct   float64
	StderrPct float64
	Samples   []Sample
}

func summarize(samples []Sample) Summary {
	s := Summary{Samples: samples}
	if len(samples) == 0 {
		return s
	}
	var sum float64
	for _, x := range samples {
		sum += x.OverheadPct
	}
	mean := sum / float64(len(samples))
	var sq float64
	for _, x := range samples {
		d := x.OverheadPct - mean
		sq += d * d
	}
	s.MeanPct = mean
	if len(samples) > 1 {
		s.StderrPct = math.Sqrt(sq/float64(len(samples)-1)) / math.Sqrt(float64(len(samples)))
	}
	return s
}

// WorkloadFunc supplies the workload and scheduler seed of run i.
type WorkloadFunc func(i int) (*vm.Workload, int64)

// Runner measures monitoring overhead.
type Runner struct {
	Model CostModel
	// Runs per measurement (paper: 10).
	Runs int
	// RingSize for ER tracing (default 64 MB).
	RingSize int
}

// NewRunner returns a Runner with the default model and 10 runs.
func NewRunner() *Runner {
	return &Runner{Model: DefaultCostModel(), Runs: 10}
}

func (r *Runner) runs() int {
	if r.Runs <= 0 {
		return 10
	}
	return r.Runs
}

func (r *Runner) ringSize() int {
	if r.RingSize <= 0 {
		return pt.DefaultRingSize
	}
	return r.RingSize
}

// MeasureER measures ER's monitoring overhead: the instrumented
// module under PT-style tracing versus the pristine module without
// monitoring. Per §5.3 the instrumented module should be the one of
// the final reproduction iteration (the one recording the most data).
func (r *Runner) MeasureER(pristine, instrumented *ir.Module, w WorkloadFunc) Summary {
	if instrumented == nil {
		instrumented = pristine
	}
	var samples []Sample
	for i := 0; i < r.runs(); i++ {
		wl, seed := w(i)
		base := vm.New(pristine, vm.Config{Input: wl.Clone(), Seed: seed}).Run("main")
		ring := pt.NewRing(r.ringSize())
		enc := pt.NewEncoder(ring)
		traced := vm.New(instrumented, vm.Config{Input: wl.Clone(), Seed: seed, Tracer: enc}).Run("main")
		enc.Finish()
		extra := float64(traced.Stats.Cycles-base.Stats.Cycles) +
			float64(ring.Written())*r.Model.PTByteCost
		if extra < 0 {
			extra = 0
		}
		samples = append(samples, Sample{
			BaseCycles:  base.Stats.Cycles,
			ExtraCycles: extra,
			TraceBytes:  ring.Written(),
			OverheadPct: 100 * extra / float64(base.Stats.Cycles),
		})
	}
	return summarize(samples)
}

// MeasureRR measures the record/replay baseline's overhead on the
// pristine module.
func (r *Runner) MeasureRR(pristine *ir.Module, w WorkloadFunc) Summary {
	var samples []Sample
	for i := 0; i < r.runs(); i++ {
		wl, seed := w(i)
		base := vm.New(pristine, vm.Config{Input: wl.Clone(), Seed: seed}).Run("main")
		st := base.Stats
		extra := float64(st.Inputs)*r.Model.RRInputCost +
			float64(st.InputBits/8)*r.Model.RRInputByteCost
		if st.Threads > 1 {
			extra += float64(st.Cycles) * r.Model.RRSerialFactor * float64(st.Threads-1)
		}
		samples = append(samples, Sample{
			BaseCycles:  st.Cycles,
			ExtraCycles: extra,
			OverheadPct: 100 * extra / float64(st.Cycles),
		})
	}
	return summarize(samples)
}

// SensitivityBufferSizes reproduces the §5.3 observation that ring
// buffer capacity does not change recording overhead (the stream is
// written once regardless); it returns the mean overhead per size.
func (r *Runner) SensitivityBufferSizes(pristine, instrumented *ir.Module, w WorkloadFunc, sizes []int) map[int]float64 {
	out := make(map[int]float64, len(sizes))
	saved := r.RingSize
	for _, sz := range sizes {
		r.RingSize = sz
		out[sz] = r.MeasureER(pristine, instrumented, w).MeanPct
	}
	r.RingSize = saved
	return out
}

// Width re-exports ir.Width to keep the package's public surface
// self-contained for callers that only deal with workloads.
type Width = ir.Width
