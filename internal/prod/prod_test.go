package prod_test

import (
	"testing"

	"execrecon/internal/minc"
	"execrecon/internal/prod"
	"execrecon/internal/vm"
)

const perfProg = `
func main() int {
	int n = input32("n");
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) {
		acc = acc + input32("data") % 97;
	}
	output(acc);
	return 0;
}`

func workload(i int) (*vm.Workload, int64) {
	w := vm.NewWorkload().Add("n", 200)
	for k := 0; k < 200; k++ {
		w.Add("data", uint64(k*7+i))
	}
	return w, int64(i) + 1
}

func TestMeasureER(t *testing.T) {
	mod, err := minc.Compile("t", perfProg)
	if err != nil {
		t.Fatal(err)
	}
	r := prod.NewRunner()
	r.Runs = 4
	sum := r.MeasureER(mod, nil, workload)
	if len(sum.Samples) != 4 {
		t.Fatalf("samples: %d", len(sum.Samples))
	}
	if sum.MeanPct <= 0 || sum.MeanPct > 10 {
		t.Errorf("ER overhead %.2f%% outside the production-plausible band", sum.MeanPct)
	}
	for _, s := range sum.Samples {
		if s.TraceBytes == 0 || s.BaseCycles == 0 {
			t.Errorf("sample not populated: %+v", s)
		}
	}
}

func TestMeasureRRExceedsER(t *testing.T) {
	mod, err := minc.Compile("t", perfProg)
	if err != nil {
		t.Fatal(err)
	}
	r := prod.NewRunner()
	r.Runs = 4
	er := r.MeasureER(mod, nil, workload)
	rr := r.MeasureRR(mod, workload)
	if rr.MeanPct <= er.MeanPct {
		t.Errorf("rr (%.2f%%) should exceed ER (%.2f%%)", rr.MeanPct, er.MeanPct)
	}
	if rr.MeanPct < 5 {
		t.Errorf("rr overhead implausibly low: %.2f%%", rr.MeanPct)
	}
}

func TestBufferSizeInsensitivity(t *testing.T) {
	// §5.3: recording overhead does not depend on ring capacity.
	mod, err := minc.Compile("t", perfProg)
	if err != nil {
		t.Fatal(err)
	}
	r := prod.NewRunner()
	r.Runs = 2
	out := r.SensitivityBufferSizes(mod, nil, workload, []int{4 << 10, 1 << 20, 16 << 20})
	var first float64
	i := 0
	for _, v := range out {
		if i == 0 {
			first = v
		} else if v != first {
			t.Errorf("overhead varies with buffer size: %v", out)
		}
		i++
	}
}

func TestMultithreadedSerializationPenalty(t *testing.T) {
	mt := `
func worker(int n) {
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
	output(acc);
}
func main() int {
	long t1 = spawn worker(3000);
	long t2 = spawn worker(3000);
	join(t1);
	join(t2);
	return 0;
}`
	mod, err := minc.Compile("t", mt)
	if err != nil {
		t.Fatal(err)
	}
	r := prod.NewRunner()
	r.Runs = 2
	w := func(i int) (*vm.Workload, int64) { return vm.NewWorkload(), int64(i) }
	rr := r.MeasureRR(mod, w)
	// Two extra threads at the serialization factor dominate: the
	// penalty must be roughly serial*2*100%.
	want := r.Model.RRSerialFactor * 2 * 100
	if rr.MeanPct < want*0.8 {
		t.Errorf("MT rr overhead %.1f%%, want >= %.1f%%", rr.MeanPct, want*0.8)
	}
}
