package pt

import (
	"bytes"
	"math/rand"
	"testing"

	"execrecon/internal/ir"
)

// encodeRandomTrace builds a valid packet stream with every packet
// kind represented.
func encodeRandomTrace(seed int64, n int) []byte {
	ring := NewRing(1 << 20)
	enc := NewEncoder(ring)
	rng := rand.New(rand.NewSource(seed))
	enc.Chunk(0, 0)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			enc.TIP(uint64(rng.Int63()))
		case 1:
			enc.PTW(int32(rng.Intn(100)-50), ir.W32, uint64(rng.Int63()))
		case 2:
			enc.PGD(uint64(rng.Intn(1 << 16)))
		case 3:
			enc.Chunk(rng.Intn(8), uint64(i))
		default:
			enc.TNT(rng.Intn(2) == 0)
		}
	}
	enc.Finish()
	data, _ := ring.Bytes()
	return data
}

// drainStream decodes data through the streaming decoder, returning
// the events it produced and its terminal error.
func drainStream(data []byte, lost uint64) ([]Event, error) {
	d := NewStreamDecoder(bytes.NewReader(data), lost)
	var evs []Event
	for {
		ev := d.Next()
		if ev == nil {
			return evs, d.Err()
		}
		evs = append(evs, *ev) // copy: the pointee is reused per packet
	}
}

// FuzzDecodeBytes is the decoder robustness fuzz target: arbitrary
// bytes (with an arbitrary lost-prefix count) must decode to events or
// an error — never a panic — and the batch and streaming decoders must
// agree. Run the smoke in CI with:
//
//	go test -run=^$ -fuzz=FuzzDecodeBytes -fuzztime=30s ./internal/pt/
func FuzzDecodeBytes(f *testing.F) {
	// Seed corpus: valid traces, truncations, and corruptions.
	valid := encodeRandomTrace(1, 400)
	f.Add(valid, uint64(0))
	f.Add(valid, uint64(17)) // forces PSB resync
	f.Add(valid[:len(valid)/2], uint64(0))
	f.Add(valid[3:], uint64(3))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{hdrPSB}, uint64(0))
	f.Add([]byte{hdrEnd}, uint64(0))
	f.Add([]byte{hdrTNT, 255}, uint64(0))                                       // truncated TNT payload
	f.Add([]byte{hdrTIP, 0x80, 0x80, 0x80}, uint64(0))                          // truncated uvarint
	f.Add(bytes.Repeat([]byte{0x80}, 16), uint64(0))                            // unknown header + varint soup
	f.Add(append([]byte{hdrTIP}, bytes.Repeat([]byte{0xff}, 12)...), uint64(0)) // uvarint overflow
	f.Add([]byte{0xee, 0x01, 0x02}, uint64(0))                                  // unknown packet header
	f.Add([]byte{hdrChunk, 3}, uint64(0))                                       // truncated chunk
	f.Add([]byte{hdrPTW, 1, 32}, uint64(0))                                     // truncated PTW value
	mangled := append([]byte(nil), valid...)
	for i := 7; i < len(mangled); i += 31 {
		mangled[i] ^= 0x41
	}
	f.Add(mangled, uint64(0))

	f.Fuzz(func(t *testing.T, data []byte, lost uint64) {
		// Must never panic (the decoder is fed attacker-shaped bytes
		// from disk by the trace archive).
		tr, batchErr := DecodeBytes(data, lost)

		// Differential: the streaming decoder must agree with the
		// batch decoder on both events and failure.
		evs, streamErr := drainStream(data, lost)
		if batchErr == nil {
			if streamErr != nil {
				t.Fatalf("batch decoded %d events but stream failed: %v", len(tr.Events), streamErr)
			}
			want := tr.Events
			if n := len(want); n > 0 && want[n-1].Kind == EvEnd {
				want = want[:n-1] // cursor semantics: End is not consumable
			}
			if len(evs) != len(want) {
				t.Fatalf("stream decoded %d events, batch %d", len(evs), len(want))
			}
			for i := range want {
				if evs[i] != want[i] {
					t.Fatalf("event %d: stream %+v != batch %+v", i, evs[i], want[i])
				}
			}
		} else if streamErr == nil {
			t.Fatalf("batch failed (%v) but stream decoded %d events cleanly", batchErr, len(evs))
		}
	})
}

// TestStreamBatchDifferentialTruncations drives the differential
// explicitly over every truncation of a valid trace — the archive's
// torn-tail shapes — without needing the fuzz engine.
func TestStreamBatchDifferentialTruncations(t *testing.T) {
	data := encodeRandomTrace(7, 300)
	for cut := 0; cut <= len(data); cut++ {
		pfx := data[:cut]
		tr, batchErr := DecodeBytes(pfx, 0)
		evs, streamErr := drainStream(pfx, 0)
		if (batchErr == nil) != (streamErr == nil) {
			t.Fatalf("cut=%d: batch err %v vs stream err %v", cut, batchErr, streamErr)
		}
		if batchErr != nil {
			continue
		}
		want := tr.Events
		if n := len(want); n > 0 && want[n-1].Kind == EvEnd {
			want = want[:n-1]
		}
		if len(evs) != len(want) {
			t.Fatalf("cut=%d: stream %d events, batch %d", cut, len(evs), len(want))
		}
	}
}

// TestRingBytesNoAlias pins the documented guarantee that Ring.Bytes
// returns a fresh copy: the snapshot must survive subsequent writes
// (including a full wrap) unchanged. The trace archive depends on
// this — it persists blobs long after the machine reused its ring.
func TestRingBytesNoAlias(t *testing.T) {
	// Unwrapped ring.
	r := NewRing(64)
	r.Write([]byte("reference occurrence"))
	snap, lost := r.Bytes()
	if lost != 0 {
		t.Fatalf("lost = %d", lost)
	}
	want := append([]byte(nil), snap...)
	r.Write(bytes.Repeat([]byte{0xAA}, 200)) // wraps several times
	if !bytes.Equal(snap, want) {
		t.Fatalf("snapshot mutated by later writes: %q != %q", snap, want)
	}

	// Wrapped ring.
	r2 := NewRing(16)
	r2.Write([]byte("0123456789abcdefghij")) // 20 bytes into a 16-byte ring
	snap2, lost2 := r2.Bytes()
	if lost2 != 4 {
		t.Fatalf("lost = %d, want 4", lost2)
	}
	want2 := append([]byte(nil), snap2...)
	r2.Write(bytes.Repeat([]byte{0x55}, 40))
	if !bytes.Equal(snap2, want2) {
		t.Fatalf("wrapped snapshot mutated by later writes")
	}
	r2.Reset()
	if !bytes.Equal(snap2, want2) {
		t.Fatalf("wrapped snapshot mutated by Reset")
	}
}
