// Package pt implements the software analog of Intel Processor Trace
// used by ER's online monitoring (§3.1, §4). The encoder packs
// control-flow events into compact packets — TNT bit groups for
// conditional branches and compressed returns, TIP packets for
// indirect transfer targets, CHUNK packets carrying coarse timestamps
// at scheduling boundaries (the MTC analog used for cross-thread
// ordering, §3.4), and PTW packets for data values emitted by ptwrite
// instrumentation. Packets stream into a fixed-capacity ring buffer
// (64 MB in the paper); periodic PSB sync points let the decoder
// resynchronize after the ring wraps, and a wrap that destroys the
// trace prefix is reported as an overflow.
package pt

import (
	"errors"
	"fmt"

	"execrecon/internal/ir"
)

// Packet headers.
const (
	hdrPSB   = 0x82 // sync point
	hdrTNT   = 0x01 // short TNT: count byte + payload bits
	hdrTIP   = 0x02 // target: uvarint
	hdrPTW   = 0x04 // key uvarint, width byte, value uvarint
	hdrChunk = 0x07 // tid uvarint, timestamp uvarint
	hdrPGD   = 0x08 // packet generation disable: pause marker, count uvarint
	hdrEnd   = 0x0f // end of trace
)

// psbInterval is the byte distance between sync points.
const psbInterval = 4096

// DefaultRingSize is the per-application trace buffer size used by
// the paper (64 MB).
const DefaultRingSize = 64 << 20

// Ring is a byte ring buffer tracking total bytes ever written.
type Ring struct {
	buf     []byte
	written uint64
}

// NewRing returns a ring of the given capacity.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]byte, capacity)}
}

// Write appends bytes, overwriting the oldest data on wrap.
func (r *Ring) Write(p []byte) {
	for _, b := range p {
		r.buf[r.written%uint64(len(r.buf))] = b
		r.written++
	}
}

// Bytes returns the surviving window in write order and the number of
// bytes lost to wrapping.
//
// The returned slice is always a fresh copy — it never aliases the
// live ring buffer — so callers (archival readers in particular) may
// retain it across subsequent Write/Reset calls. This is a documented
// guarantee, not an accident of the implementation: internal/tracestore
// persists these blobs long after the producing machine has reused its
// ring, and TestRingBytesNoAlias pins the behavior.
func (r *Ring) Bytes() (data []byte, lost uint64) {
	cap64 := uint64(len(r.buf))
	if r.written <= cap64 {
		return append([]byte(nil), r.buf[:r.written]...), 0
	}
	lost = r.written - cap64
	start := r.written % cap64
	out := make([]byte, 0, cap64)
	out = append(out, r.buf[start:]...)
	out = append(out, r.buf[:start]...)
	return out, lost
}

// Written returns total bytes ever written (the monitoring-cost
// figure used by the overhead model).
func (r *Ring) Written() uint64 { return r.written }

// Reset rewinds the ring for reuse without reallocating its buffer.
// Production machines (internal/prod) reuse one ring across benign
// runs and only ship (and replace) it when a run fails, so steady
// traffic does not allocate a fresh trace buffer per run.
func (r *Ring) Reset() { r.written = 0 }

// Cap returns the ring's capacity in bytes.
func (r *Ring) Cap() int { return len(r.buf) }

// Encoder serializes trace events into a Ring. It implements the
// vm.Tracer shape (the vm package defines the interface; this type
// satisfies it structurally).
type Encoder struct {
	ring *Ring

	tntBits  []bool
	sincePSB uint64

	// Event counts for the efficiency experiments.
	NumTNT, NumTIP, NumPTW, NumChunk uint64
}

// NewEncoder returns an encoder writing into ring.
func NewEncoder(ring *Ring) *Encoder {
	e := &Encoder{ring: ring}
	e.emitPSB()
	return e
}

func (e *Encoder) emit(p []byte) {
	e.ring.Write(p)
	e.sincePSB += uint64(len(p))
}

func (e *Encoder) emitPSB() {
	e.flushTNT()
	e.emit([]byte{hdrPSB})
	e.sincePSB = 0
}

func (e *Encoder) maybePSB() {
	if e.sincePSB >= psbInterval {
		e.emitPSB()
	}
}

func putUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// flushTNT emits pending TNT bits as one packet.
func (e *Encoder) flushTNT() {
	n := len(e.tntBits)
	if n == 0 {
		return
	}
	pkt := []byte{hdrTNT, byte(n)}
	var cur byte
	for i, b := range e.tntBits {
		if b {
			cur |= 1 << (uint(i) % 8)
		}
		if i%8 == 7 {
			pkt = append(pkt, cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		pkt = append(pkt, cur)
	}
	e.tntBits = e.tntBits[:0]
	e.emit(pkt)
}

// TNT buffers a taken/not-taken bit.
func (e *Encoder) TNT(taken bool) {
	e.NumTNT++
	e.tntBits = append(e.tntBits, taken)
	if len(e.tntBits) == 255 {
		e.flushTNT()
		e.maybePSB()
	}
}

// TIP records an indirect transfer target.
func (e *Encoder) TIP(target uint64) {
	e.NumTIP++
	e.flushTNT()
	e.emit(putUvarint([]byte{hdrTIP}, target))
	e.maybePSB()
}

// PTW records an instrumented data value. The width is recorded in
// bits so the consumer can size the concretization constraint.
func (e *Encoder) PTW(key int32, w ir.Width, val uint64) {
	widthBits := uint8(w)
	e.NumPTW++
	e.flushTNT()
	pkt := putUvarint([]byte{hdrPTW}, uint64(uint32(key)))
	pkt = append(pkt, widthBits)
	pkt = putUvarint(pkt, val)
	e.emit(pkt)
	e.maybePSB()
}

// PGD records that the running thread was descheduled after
// executing count instructions since its last trace event — the
// analog of Intel PT's packet-generation-disable marker, whose target
// IP pins the exact pause point. The count lets the trace consumer
// locate the preemption even in event-silent instruction stretches.
func (e *Encoder) PGD(count uint64) {
	e.flushTNT()
	e.emit(putUvarint([]byte{hdrPGD}, count))
	e.maybePSB()
}

// Chunk records a scheduling boundary: thread tid resumes at coarse
// timestamp ts.
func (e *Encoder) Chunk(tid int, ts uint64) {
	e.NumChunk++
	e.flushTNT()
	pkt := putUvarint([]byte{hdrChunk}, uint64(tid))
	pkt = putUvarint(pkt, ts)
	e.emit(pkt)
	e.maybePSB()
}

// Finish flushes buffered bits and emits the end marker.
func (e *Encoder) Finish() {
	e.flushTNT()
	e.emit([]byte{hdrEnd})
}

// EventKind classifies decoded events.
type EventKind uint8

// Decoded event kinds.
const (
	EvTNT EventKind = iota
	EvTIP
	EvPTW
	EvChunk
	EvPGD
	EvEnd
)

// Event is a decoded trace event.
type Event struct {
	Kind      EventKind
	Taken     bool   // EvTNT
	Target    uint64 // EvTIP
	Key       int32  // EvPTW
	WidthBits uint8  // EvPTW
	Value     uint64 // EvPTW
	Tid       int    // EvChunk
	Timestamp uint64 // EvChunk
	Count     uint64 // EvPGD: instructions since the thread's last event
}

// Trace is a fully decoded trace.
type Trace struct {
	Events []Event
	// Truncated is true when the ring wrapped and the prefix of the
	// execution was lost; Events then starts at the first surviving
	// sync point.
	Truncated bool
	LostBytes uint64
}

// ErrNoSync is returned when a wrapped trace contains no sync point.
var ErrNoSync = errors.New("pt: wrapped trace contains no PSB sync point")

// maxUvarintBytes bounds a uvarint encoding: 10 groups of 7 bits
// cover 64 bits. Longer encodings are malformed input (the decoder is
// fed attacker-shaped bytes from disk by the trace archive, so it
// must reject rather than silently wrap).
const maxUvarintBytes = 10

// Decode parses the ring contents back into events.
func Decode(r *Ring) (*Trace, error) {
	data, lost := r.Bytes()
	return DecodeBytes(data, lost)
}

// DecodeBytes parses a raw packet stream (as returned by Ring.Bytes)
// back into events. lost is the number of prefix bytes destroyed by
// ring wrapping; when nonzero the decoder resynchronizes at the first
// PSB sync point. DecodeBytes never panics: corrupt or truncated
// input produces an error.
func DecodeBytes(data []byte, lost uint64) (*Trace, error) {
	t := &Trace{Truncated: lost > 0, LostBytes: lost}
	i := 0
	if lost > 0 {
		// Resynchronize at the first PSB. A PSB byte inside a
		// packet body could alias; the encoder bounds packet size
		// far below psbInterval so scanning forward finds a true
		// sync in practice.
		sync := -1
		for j := range data {
			if data[j] == hdrPSB {
				sync = j
				break
			}
		}
		if sync < 0 {
			return nil, ErrNoSync
		}
		i = sync
	}
	getUvarint := func() (uint64, error) {
		var v uint64
		var shift uint
		for n := 0; ; n++ {
			if i >= len(data) {
				return 0, fmt.Errorf("pt: truncated uvarint at %d", i)
			}
			if n == maxUvarintBytes {
				return 0, fmt.Errorf("pt: uvarint overflow at %d", i)
			}
			b := data[i]
			i++
			v |= uint64(b&0x7f) << shift
			if b < 0x80 {
				return v, nil
			}
			shift += 7
		}
	}
	for i < len(data) {
		h := data[i]
		i++
		switch h {
		case hdrPSB:
			// sync point; no payload
		case hdrTNT:
			if i >= len(data) {
				return nil, fmt.Errorf("pt: truncated TNT header")
			}
			n := int(data[i])
			i++
			nbytes := (n + 7) / 8
			if i+nbytes > len(data) {
				return nil, fmt.Errorf("pt: truncated TNT payload")
			}
			for k := 0; k < n; k++ {
				bit := data[i+k/8]>>(uint(k)%8)&1 == 1
				t.Events = append(t.Events, Event{Kind: EvTNT, Taken: bit})
			}
			i += nbytes
		case hdrTIP:
			v, err := getUvarint()
			if err != nil {
				return nil, err
			}
			t.Events = append(t.Events, Event{Kind: EvTIP, Target: v})
		case hdrPTW:
			k, err := getUvarint()
			if err != nil {
				return nil, err
			}
			if i >= len(data) {
				return nil, fmt.Errorf("pt: truncated PTW width")
			}
			wb := data[i]
			i++
			v, err := getUvarint()
			if err != nil {
				return nil, err
			}
			t.Events = append(t.Events, Event{Kind: EvPTW, Key: int32(uint32(k)), WidthBits: wb, Value: v})
		case hdrPGD:
			c, err := getUvarint()
			if err != nil {
				return nil, err
			}
			t.Events = append(t.Events, Event{Kind: EvPGD, Count: c})
		case hdrChunk:
			tid, err := getUvarint()
			if err != nil {
				return nil, err
			}
			ts, err := getUvarint()
			if err != nil {
				return nil, err
			}
			t.Events = append(t.Events, Event{Kind: EvChunk, Tid: int(tid), Timestamp: ts})
		case hdrEnd:
			t.Events = append(t.Events, Event{Kind: EvEnd})
			return t, nil
		default:
			return nil, fmt.Errorf("pt: unknown packet header %#x at %d", h, i-1)
		}
	}
	return t, nil
}

// EventSource is the event-at-a-time interface the shepherded
// executor consumes: sequential Peek/Next with position accounting.
// Cursor implements it over a fully decoded in-memory Trace;
// StreamDecoder implements it over an incrementally decoded byte
// stream (the trace-archive read path), and internal/tracestore's
// readers compose it over delta-reconstructed segment data.
//
// Remaining may be a lower bound for streaming sources that do not
// know the total event count in advance; the contract consumers rely
// on is only that Remaining() > 0 iff another event is available.
type EventSource interface {
	// Peek returns the next event without consuming it, or nil at
	// end of trace (or on a source error).
	Peek() *Event
	// Next consumes and returns the next event, or nil at end.
	Next() *Event
	// Pos returns the number of events consumed so far.
	Pos() int
	// Remaining reports whether (and for in-memory sources, how
	// many) events remain.
	Remaining() int
}

// Cursor iterates a decoded trace the way the shepherded executor
// consumes it: sequential events with kind expectations.
type Cursor struct {
	tr  *Trace
	pos int
}

// NewCursor returns a cursor at the start of tr.
func NewCursor(tr *Trace) *Cursor { return &Cursor{tr: tr} }

// Peek returns the next event without consuming it, or nil at end.
func (c *Cursor) Peek() *Event {
	for c.pos < len(c.tr.Events) {
		ev := &c.tr.Events[c.pos]
		if ev.Kind == EvEnd {
			return nil
		}
		return ev
	}
	return nil
}

// Next consumes and returns the next event, or nil at end.
func (c *Cursor) Next() *Event {
	ev := c.Peek()
	if ev != nil {
		c.pos++
	}
	return ev
}

// Pos returns the cursor position (events consumed).
func (c *Cursor) Pos() int { return c.pos }

var _ EventSource = (*Cursor)(nil)

// Remaining returns the number of unconsumed events.
func (c *Cursor) Remaining() int {
	n := len(c.tr.Events) - c.pos
	if n > 0 && c.tr.Events[len(c.tr.Events)-1].Kind == EvEnd {
		n--
	}
	if n < 0 {
		return 0
	}
	return n
}
