package pt

import (
	"math/rand"
	"testing"

	"execrecon/internal/ir"
)

func TestPacketRoundTrip(t *testing.T) {
	ring := NewRing(1 << 16)
	enc := NewEncoder(ring)
	enc.Chunk(0, 1)
	enc.TNT(true)
	enc.TNT(false)
	enc.TNT(true)
	enc.TIP(42)
	enc.PTW(7, ir.W32, 0xdeadbeef)
	enc.PGD(13)
	enc.Chunk(1, 2)
	enc.TNT(false)
	enc.Finish()

	tr, err := Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: EvChunk, Tid: 0, Timestamp: 1},
		{Kind: EvTNT, Taken: true},
		{Kind: EvTNT, Taken: false},
		{Kind: EvTNT, Taken: true},
		{Kind: EvTIP, Target: 42},
		{Kind: EvPTW, Key: 7, WidthBits: 32, Value: 0xdeadbeef},
		{Kind: EvPGD, Count: 13},
		{Kind: EvChunk, Tid: 1, Timestamp: 2},
		{Kind: EvTNT, Taken: false},
		{Kind: EvEnd},
	}
	if len(tr.Events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(tr.Events), len(want), tr.Events)
	}
	for i, ev := range tr.Events {
		if ev != want[i] {
			t.Errorf("event %d: got %+v want %+v", i, ev, want[i])
		}
	}
}

func TestRandomizedTNTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		ring := NewRing(1 << 20)
		enc := NewEncoder(ring)
		n := rng.Intn(3000) + 1
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
			enc.TNT(bits[i])
		}
		enc.Finish()
		tr, err := Decode(ring)
		if err != nil {
			t.Fatal(err)
		}
		var got []bool
		for _, ev := range tr.Events {
			if ev.Kind == EvTNT {
				got = append(got, ev.Taken)
			}
		}
		if len(got) != n {
			t.Fatalf("trial %d: %d bits, want %d", trial, len(got), n)
		}
		for i := range bits {
			if got[i] != bits[i] {
				t.Fatalf("trial %d: bit %d differs", trial, i)
			}
		}
	}
}

func TestLargeVarints(t *testing.T) {
	ring := NewRing(1 << 16)
	enc := NewEncoder(ring)
	enc.TIP(1<<63 + 12345)
	enc.PTW(2147480000, ir.W64, ^uint64(0))
	enc.Chunk(1000000, 1<<40)
	enc.Finish()
	tr, err := Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Target != 1<<63+12345 {
		t.Errorf("TIP target: %#x", tr.Events[0].Target)
	}
	if tr.Events[1].Value != ^uint64(0) || tr.Events[1].Key != 2147480000 {
		t.Errorf("PTW: %+v", tr.Events[1])
	}
	if tr.Events[2].Tid != 1000000 || tr.Events[2].Timestamp != 1<<40 {
		t.Errorf("Chunk: %+v", tr.Events[2])
	}
}

func TestRingWrapResync(t *testing.T) {
	ring := NewRing(6000)
	enc := NewEncoder(ring)
	for i := 0; i < 300000; i++ {
		enc.TNT(i%3 == 0)
	}
	enc.Finish()
	tr, err := Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Truncated || tr.LostBytes == 0 {
		t.Fatalf("truncation not reported: %+v", tr)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no surviving events")
	}
	// The surviving suffix must end with the end marker.
	if tr.Events[len(tr.Events)-1].Kind != EvEnd {
		t.Error("missing end marker after resync")
	}
}

func TestCursor(t *testing.T) {
	ring := NewRing(1 << 12)
	enc := NewEncoder(ring)
	enc.TNT(true)
	enc.TIP(9)
	enc.Finish()
	tr, err := Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCursor(tr)
	if c.Remaining() != 2 {
		t.Errorf("remaining: %d", c.Remaining())
	}
	if ev := c.Peek(); ev == nil || ev.Kind != EvTNT {
		t.Errorf("peek: %+v", ev)
	}
	if ev := c.Next(); ev == nil || ev.Kind != EvTNT {
		t.Errorf("next: %+v", ev)
	}
	if ev := c.Next(); ev == nil || ev.Kind != EvTIP {
		t.Errorf("next: %+v", ev)
	}
	if c.Next() != nil {
		t.Error("cursor past end")
	}
	if c.Remaining() != 0 {
		t.Errorf("remaining at end: %d", c.Remaining())
	}
}

func TestWrittenCount(t *testing.T) {
	ring := NewRing(64)
	enc := NewEncoder(ring)
	before := ring.Written()
	enc.TIP(5)
	if ring.Written() <= before {
		t.Error("written bytes not counted")
	}
	// Wrapping does not reset the total.
	for i := 0; i < 100; i++ {
		enc.TIP(uint64(i))
	}
	if ring.Written() < 200 {
		t.Errorf("written: %d", ring.Written())
	}
}
