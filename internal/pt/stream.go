package pt

import (
	"bufio"
	"fmt"
	"io"
)

// StreamDecoder decodes a PT packet stream incrementally from an
// io.Reader, yielding events one packet at a time. It implements
// EventSource, so it plugs directly into the shepherded symbolic
// executor — this is how internal/tracestore feeds archived traces
// into analysis without ever materializing the full event slice (a
// decoded trace is an order of magnitude larger than its packet
// bytes).
//
// Semantics mirror DecodeBytes: an End packet terminates the stream
// cleanly; clean EOF at a packet boundary also terminates it (a trace
// without an end marker decodes to its events, as in batch mode);
// corrupt or truncated-mid-packet input stops the stream and records
// the error in Err. StreamDecoder never panics on malformed input.
//
// Pointer lifetime: the *Event returned by Peek/Next points into a
// per-packet buffer that is reused once the packet is exhausted. It
// stays valid until the first Peek/Next call that crosses into the
// next packet — which matches how the shepherded executor consumes
// events (each event's fields are read before the cursor advances
// again). Consumers that retain events across cursor calls must copy
// them.
type StreamDecoder struct {
	r    *bufio.Reader
	lost uint64

	// pending holds the events of the most recently decoded packet
	// (a TNT packet carries up to 255). pi indexes the next one.
	pending []Event
	pi      int

	pos    int
	synced bool
	done   bool
	err    error
}

// NewStreamDecoder returns a decoder reading packet bytes from r.
// lost is the byte count destroyed by ring wrapping (0 for a complete
// stream); when nonzero the decoder scans forward to the first PSB
// sync point before emitting events, exactly like DecodeBytes.
func NewStreamDecoder(r io.Reader, lost uint64) *StreamDecoder {
	return &StreamDecoder{
		r:      bufio.NewReaderSize(r, 4096),
		lost:   lost,
		synced: lost == 0,
	}
}

// Truncated reports whether the stream's prefix was lost to ring
// wrapping.
func (d *StreamDecoder) Truncated() bool { return d.lost > 0 }

// Err returns the terminal decode error, if any. It is only
// meaningful once Peek has returned nil.
func (d *StreamDecoder) Err() error { return d.err }

func (d *StreamDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
	d.done = true
}

// failRead records a mid-packet read failure, preserving a real
// source error (archive reconstruction failures) over the generic
// truncation message.
func (d *StreamDecoder) failRead(err error, what string) {
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		d.fail(err)
		return
	}
	d.fail(fmt.Errorf("pt: truncated %s in stream", what))
}

// readUvarint reads a bounded uvarint. Truncation mid-varint is an
// error (the batch decoder treats it identically).
func (d *StreamDecoder) readUvarint() (uint64, bool) {
	var v uint64
	var shift uint
	for n := 0; ; n++ {
		if n == maxUvarintBytes {
			d.fail(fmt.Errorf("pt: uvarint overflow in stream"))
			return 0, false
		}
		b, err := d.r.ReadByte()
		if err != nil {
			d.failRead(err, "uvarint")
			return 0, false
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, true
		}
		shift += 7
	}
}

// sync scans forward to the first PSB byte (wrapped-stream recovery).
func (d *StreamDecoder) sync() {
	for {
		b, err := d.r.ReadByte()
		if err != nil {
			d.fail(ErrNoSync)
			return
		}
		if b == hdrPSB {
			d.synced = true
			return
		}
	}
}

// decodePacket decodes packets until at least one event is pending or
// the stream ends.
func (d *StreamDecoder) decodePacket() {
	for !d.done && d.pi >= len(d.pending) {
		if !d.synced {
			d.sync()
			continue
		}
		h, err := d.r.ReadByte()
		if err != nil {
			if err == io.EOF {
				// Clean EOF at a packet boundary: end of trace (batch
				// decode also accepts a stream without an End marker).
				d.done = true
			} else {
				// A real source error (e.g. corrupt delta/RLE layer in
				// the trace archive) must surface, not masquerade as a
				// short trace.
				d.fail(err)
			}
			return
		}
		d.pending = d.pending[:0]
		d.pi = 0
		switch h {
		case hdrPSB:
			// sync point; no payload
		case hdrTNT:
			nb, err := d.r.ReadByte()
			if err != nil {
				d.failRead(err, "TNT header")
				return
			}
			n := int(nb)
			nbytes := (n + 7) / 8
			var payload [32]byte
			if _, err := io.ReadFull(d.r, payload[:nbytes]); err != nil {
				d.failRead(err, "TNT payload")
				return
			}
			for k := 0; k < n; k++ {
				bit := payload[k/8]>>(uint(k)%8)&1 == 1
				d.pending = append(d.pending, Event{Kind: EvTNT, Taken: bit})
			}
		case hdrTIP:
			v, ok := d.readUvarint()
			if !ok {
				return
			}
			d.pending = append(d.pending, Event{Kind: EvTIP, Target: v})
		case hdrPTW:
			k, ok := d.readUvarint()
			if !ok {
				return
			}
			wb, err := d.r.ReadByte()
			if err != nil {
				d.failRead(err, "PTW width")
				return
			}
			v, ok := d.readUvarint()
			if !ok {
				return
			}
			d.pending = append(d.pending, Event{Kind: EvPTW, Key: int32(uint32(k)), WidthBits: wb, Value: v})
		case hdrPGD:
			c, ok := d.readUvarint()
			if !ok {
				return
			}
			d.pending = append(d.pending, Event{Kind: EvPGD, Count: c})
		case hdrChunk:
			tid, ok := d.readUvarint()
			if !ok {
				return
			}
			ts, ok := d.readUvarint()
			if !ok {
				return
			}
			d.pending = append(d.pending, Event{Kind: EvChunk, Tid: int(tid), Timestamp: ts})
		case hdrEnd:
			d.done = true
		default:
			d.fail(fmt.Errorf("pt: unknown packet header %#x in stream", h))
		}
	}
}

// Peek returns the next event without consuming it, or nil at end of
// trace (check Err to distinguish clean end from decode failure).
func (d *StreamDecoder) Peek() *Event {
	if d.pi >= len(d.pending) {
		d.decodePacket()
	}
	if d.pi < len(d.pending) {
		return &d.pending[d.pi]
	}
	return nil
}

// Next consumes and returns the next event, or nil at end.
func (d *StreamDecoder) Next() *Event {
	ev := d.Peek()
	if ev != nil {
		d.pi++
		d.pos++
	}
	return ev
}

// Pos returns the number of events consumed.
func (d *StreamDecoder) Pos() int { return d.pos }

// Remaining reports 1 while another event is available and 0 at end —
// a lower bound, per the EventSource contract (a streaming decoder
// cannot know the total count without reading ahead).
func (d *StreamDecoder) Remaining() int {
	if d.Peek() != nil {
		return 1
	}
	return 0
}

var _ EventSource = (*StreamDecoder)(nil)
