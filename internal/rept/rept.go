// Package rept implements the REPT-style reverse-recovery baseline
// (§2, §5.2): given only the control-flow trace and the post-failure
// core dump — no recorded data values — it reconstructs register
// values along the trace by iterated backward and forward analysis,
// inverting invertible operations and guessing memory reads from the
// final dump. Like the real system, it is best-effort: values the
// program overwrote are unrecoverable, and dump-based memory guesses
// can be silently wrong when later stores clobbered the location —
// which is precisely the accuracy limitation (15-60% incorrect beyond
// ~100 K instructions) that motivates ER.
package rept

import (
	"fmt"

	"execrecon/internal/ir"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

// dynInstr is one dynamic instruction of the linearized trace.
type dynInstr struct {
	in *ir.Instr
}

// Recovery is the outcome of one reverse-recovery run.
type Recovery struct {
	// TraceLen is the number of dynamic instructions analyzed.
	TraceLen int
	// Writes is the number of register-writing dynamic instructions
	// (the values REPT tries to recover).
	Writes int
	// Correct, Incorrect, Unknown partition Writes.
	Correct   int
	Incorrect int
	Unknown   int
	// CorrectOldest/WritesOldest score only the oldest window of
	// the trace (the first 1000 register writes), where recovery
	// must reach furthest back from the dump.
	CorrectOldest int
	WritesOldest  int
}

// CorrectFrac returns the fraction of writes recovered correctly.
func (r *Recovery) CorrectFrac() float64 {
	if r.Writes == 0 {
		return 1
	}
	return float64(r.Correct) / float64(r.Writes)
}

// IncorrectFrac returns the fraction recovered with a wrong value.
func (r *Recovery) IncorrectFrac() float64 {
	if r.Writes == 0 {
		return 0
	}
	return float64(r.Incorrect) / float64(r.Writes)
}

// val is a possibly-unknown recovered value.
type val struct {
	known bool
	v     uint64
}

// Recover runs the REPT analysis for function fn over the trace and
// dump, and scores it against the ground-truth write log.
//
// truth[i] is the correct value written by the i-th register-writing
// dynamic instruction (collected with vm.Config.OnRegWrite).
func Recover(mod *ir.Module, fnName string, trace *pt.Trace, dump *vm.CoreDump, failID int32, truth []uint64) (*Recovery, error) {
	fn := mod.FuncByName(fnName)
	if fn == nil {
		return nil, fmt.Errorf("rept: no function %q", fnName)
	}
	// Rebuild the dynamic instruction sequence by walking the CFG
	// under the trace's TNT bits, as REPT replays the PT trace over
	// the binary. Calls are unsupported: x86 REPT shares one
	// register file, while our frames are per-call, so the baseline
	// is scored on single-frame traces.
	seq, err := linearizeToEnd(fn, trace, failID)
	if err != nil {
		return nil, err
	}

	n := len(seq)
	// states[i] = register values before dynamic instruction i.
	// states[n] = dump registers.
	states := make([][]val, n+1)
	for i := range states {
		states[i] = make([]val, fn.NumRegs)
	}
	for r, v := range dump.Regs {
		states[n][r] = val{known: true, v: v}
	}

	// Iterated backward/forward analysis.
	for round := 0; round < 4; round++ {
		changed := false
		// Backward.
		for i := n - 1; i >= 0; i-- {
			changed = backward(seq[i].in, states[i], states[i+1]) || changed
		}
		// Forward.
		for i := 0; i < n; i++ {
			changed = forward(mod, seq[i].in, states[i], states[i+1], dump, seq[i+1:]) || changed
		}
		if !changed {
			break
		}
	}

	// Score register-writing instructions against ground truth.
	rec := &Recovery{TraceLen: n}
	ti := 0
	for i := 0; i < n; i++ {
		in := seq[i].in
		if !writesReg(in.Op) {
			continue
		}
		if ti >= len(truth) {
			break
		}
		want := truth[ti]
		ti++
		rec.Writes++
		old := rec.Writes <= 1000
		if old {
			rec.WritesOldest++
		}
		got := states[i+1][in.Dst]
		switch {
		case !got.known:
			rec.Unknown++
		case got.v == want:
			rec.Correct++
			if old {
				rec.CorrectOldest++
			}
		default:
			rec.Incorrect++
		}
	}
	return rec, nil
}

// linearizeToEnd walks the CFG until the trace events are exhausted
// and the next instruction would need one, returning the dynamic
// sequence (the tail instruction is the failure site). Scheduling
// packets (chunk boundaries, pause markers) carry no control-flow
// content for the single-frame traces this baseline handles and are
// filtered out first.
func linearizeToEnd(fn *ir.Func, trace *pt.Trace, failID int32) ([]dynInstr, error) {
	cf := &pt.Trace{}
	for _, ev := range trace.Events {
		switch ev.Kind {
		case pt.EvTNT, pt.EvTIP, pt.EvPTW, pt.EvEnd:
			cf.Events = append(cf.Events, ev)
		}
	}
	var out []dynInstr
	cur := pt.NewCursor(cf)
	blk, ii := 0, 0
	for steps := 0; steps < 100_000_000; steps++ {
		in := &fn.Blocks[blk].Instrs[ii]
		if cur.Remaining() == 0 && in.ID == failID {
			// The failing instruction ends the dynamic sequence.
			out = append(out, dynInstr{in: in})
			return out, nil
		}
		switch in.Op {
		case ir.OpCondBr:
			if cur.Remaining() == 0 {
				// The failing instruction is this one only if the
				// failure was at a branch (it is not, for our
				// workloads); otherwise the previous instruction
				// ended the trace.
				return out, nil
			}
			out = append(out, dynInstr{in: in})
			ev := cur.Next()
			if ev.Kind != pt.EvTNT {
				return nil, fmt.Errorf("rept: expected TNT")
			}
			if ev.Taken {
				blk = in.Blk
			} else {
				blk = in.Blk2
			}
			ii = 0
		case ir.OpBr:
			out = append(out, dynInstr{in: in})
			blk, ii = in.Blk, 0
		case ir.OpRet, ir.OpCall, ir.OpICall, ir.OpSpawn:
			return nil, fmt.Errorf("rept: calls unsupported in baseline linearization")
		case ir.OpAbort, ir.OpAssert:
			out = append(out, dynInstr{in: in})
			if in.Op == ir.OpAbort || cur.Remaining() == 0 {
				return out, nil
			}
			ii++
		default:
			out = append(out, dynInstr{in: in})
			if cur.Remaining() == 0 {
				// Heuristic end: memory failures terminate without
				// a trailing event; detect via instruction kind at
				// the next branch instead. Keep walking until a
				// branch is reached (handled above).
			}
			ii++
		}
	}
	return nil, fmt.Errorf("rept: trace too long")
}

func writesReg(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpMov, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv,
		ir.OpURem, ir.OpSDiv, ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpEq, ir.OpNe, ir.OpUlt,
		ir.OpUle, ir.OpSlt, ir.OpSle, ir.OpZext, ir.OpSext, ir.OpTrunc,
		ir.OpLoad, ir.OpFrame, ir.OpGlobal, ir.OpMalloc, ir.OpFuncAddr,
		ir.OpInput:
		return true
	}
	return false
}

// backward propagates knowledge from the after-state to the
// before-state of one instruction, inverting where possible.
func backward(in *ir.Instr, before, after []val) bool {
	changed := false
	setB := func(r int, v uint64) {
		if !before[r].known {
			before[r] = val{known: true, v: v}
			changed = true
		}
	}
	// Registers not written by this instruction flow backward
	// unchanged.
	dst := -1
	if writesReg(in.Op) {
		dst = in.Dst
	}
	for r := range after {
		if r != dst && after[r].known {
			setB(r, after[r].v)
		}
	}
	if dst < 0 {
		return changed
	}
	// Inversion: dst = a op b with dst known after.
	av := after[dst]
	if !av.known {
		return changed
	}
	argVal := func(a ir.Arg, st []val) (uint64, bool) {
		if a.K == ir.ArgImm {
			return a.Imm, true
		}
		if a.Reg == dst {
			return 0, false // operand clobbered by this write
		}
		if st[a.Reg].known {
			return st[a.Reg].v, true
		}
		return 0, false
	}
	mask := func(v uint64) uint64 {
		if in.W == ir.W64 || in.W == 0 {
			return v
		}
		return v & (1<<uint(in.W) - 1)
	}
	switch in.Op {
	case ir.OpAdd:
		// dst = a + b: recover the unknown operand.
		if bv, ok := argVal(in.B, after); ok && in.A.K == ir.ArgReg && in.A.Reg != dst {
			setB(in.A.Reg, mask(av.v-bv))
		}
		if avv, ok := argVal(in.A, after); ok && in.B.K == ir.ArgReg && in.B.Reg != dst {
			setB(in.B.Reg, mask(av.v-avv))
		}
	case ir.OpSub:
		if bv, ok := argVal(in.B, after); ok && in.A.K == ir.ArgReg && in.A.Reg != dst {
			setB(in.A.Reg, mask(av.v+bv))
		}
		if avv, ok := argVal(in.A, after); ok && in.B.K == ir.ArgReg && in.B.Reg != dst {
			setB(in.B.Reg, mask(avv-av.v))
		}
	case ir.OpXor:
		if bv, ok := argVal(in.B, after); ok && in.A.K == ir.ArgReg && in.A.Reg != dst {
			setB(in.A.Reg, mask(av.v^bv))
		}
		if avv, ok := argVal(in.A, after); ok && in.B.K == ir.ArgReg && in.B.Reg != dst {
			setB(in.B.Reg, mask(avv^av.v))
		}
	case ir.OpMov, ir.OpZext:
		if in.A.K == ir.ArgReg && in.A.Reg != dst {
			// Only low bits are implied; full recovery when the
			// width covers the register's live range — best effort.
			setB(in.A.Reg, av.v)
		}
	}
	return changed
}

// forward computes the after-state from the before-state, using the
// dump for memory reads (REPT's error-prone guess: later unknown
// stores may have clobbered the location).
func forward(mod *ir.Module, in *ir.Instr, before, after []val, dump *vm.CoreDump, rest []dynInstr) bool {
	changed := false
	setA := func(r int, v uint64) {
		if !after[r].known {
			after[r] = val{known: true, v: v}
			changed = true
		}
	}
	dst := -1
	if writesReg(in.Op) {
		dst = in.Dst
	}
	for r := range before {
		if r != dst && before[r].known {
			setA(r, before[r].v)
		}
	}
	if dst < 0 {
		return changed
	}
	argVal := func(a ir.Arg) (uint64, bool) {
		if a.K == ir.ArgImm {
			return a.Imm, true
		}
		if before[a.Reg].known {
			return before[a.Reg].v, true
		}
		return 0, false
	}
	switch in.Op {
	case ir.OpConst:
		setA(dst, in.A.Imm)
	case ir.OpGlobal:
		setA(dst, vm.PackAddr(vm.GlobalObject(int(in.A.Imm)), 0))
	case ir.OpMov, ir.OpZext, ir.OpTrunc, ir.OpSext:
		if v, ok := argVal(in.A); ok {
			setA(dst, convWidth(in, v))
		}
	case ir.OpLoad:
		if addr, ok := argVal(in.A); ok {
			// Guess from the dump — wrong if a later store
			// clobbered the address; this is REPT's documented
			// inaccuracy source and is deliberately not checked.
			obj, off := vm.SplitAddr(addr)
			data, live := dump.Objects[obj]
			nb := in.W.Bytes()
			if live && int(off)+nb <= len(data) {
				var v uint64
				for i := 0; i < nb; i++ {
					v |= uint64(data[int(off)+i]) << (8 * i)
				}
				setA(dst, v)
			}
		}
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpSDiv,
		ir.OpSRem, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr,
		ir.OpAShr, ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle:
		a, okA := argVal(in.A)
		b, okB := argVal(in.B)
		if okA && okB {
			if v, ok := vm.EvalBin(in.Op, in.W, a, b); ok {
				setA(dst, v)
			}
		}
	}
	return changed
}

func convWidth(in *ir.Instr, v uint64) uint64 {
	if in.W == ir.W64 {
		return v
	}
	m := uint64(1)<<uint(in.W) - 1
	v &= m
	if in.Op == ir.OpSext && v&(1<<(uint(in.W)-1)) != 0 {
		v |= ^m
	}
	return v
}
