package rept_test

import (
	"testing"

	"execrecon/internal/minc"
	"execrecon/internal/pt"
	"execrecon/internal/rept"
	"execrecon/internal/vm"
)

// runKernel executes a single-frame program, returning everything the
// REPT analysis needs plus the ground truth.
func runKernel(t *testing.T, src string, w *vm.Workload) (*rept.Recovery, *vm.Result) {
	t.Helper()
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	ring := pt.NewRing(1 << 24)
	enc := pt.NewEncoder(ring)
	var truth []uint64
	cfg := vm.Config{
		Input:  w,
		Tracer: enc,
		OnRegWrite: func(fn string, id int32, dst int, val uint64) {
			if fn == "main" {
				truth = append(truth, val)
			}
		},
	}
	res := vm.New(mod, cfg).Run("main")
	if res.Failure == nil {
		t.Fatal("kernel did not fail")
	}
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rept.Recover(mod, "main", tr, res.Dump, res.Failure.InstrID, truth)
	if err != nil {
		t.Fatal(err)
	}
	return rec, res
}

func TestRecoverSimpleArithmetic(t *testing.T) {
	// Pure forward-computable arithmetic: everything recovers.
	src := `
func main() int {
	int a = 5;
	int b = a * 3;
	int c = b + 7;
	int z = c & 0;
	return 100 / z;
}`
	rec, _ := runKernel(t, src, vm.NewWorkload())
	if rec.Writes == 0 {
		t.Fatal("no writes scored")
	}
	if rec.CorrectFrac() < 0.99 {
		t.Errorf("forward-computable program: %.2f correct", rec.CorrectFrac())
	}
}

func TestRecoverUnknownInputBackward(t *testing.T) {
	// x comes from input (unknown); additions are invertible from
	// the final state, so recent values recover.
	src := `
func main() int {
	int x = input32("x");
	x = x + 3;
	x = x + 4;
	int z = x & 0;
	return 100 / z;
}`
	rec, _ := runKernel(t, src, vm.NewWorkload().Add("x", 10))
	if rec.CorrectFrac() < 0.9 {
		t.Errorf("invertible chain: %.2f correct (%d/%d)", rec.CorrectFrac(), rec.Correct, rec.Writes)
	}
}

func TestRecoverDegradesWithClobbering(t *testing.T) {
	src := `
int tbl[8];
func main() int {
	int n = input32("n");
	if (n < 1 || n > 100000) { return 0; }
	int x = input32("x0");
	int i = 0;
	while (i < n) {
		int d = tbl[i & 7];
		x = x + d + 1;
		tbl[(i + 3) & 7] = x;
		i = i + 1;
	}
	int z = x & 0;
	return 100 / z;
}`
	short, _ := runKernel(t, src, vm.NewWorkload().Add("n", 4).Add("x0", 100))
	long, _ := runKernel(t, src, vm.NewWorkload().Add("n", 2000).Add("x0", 100))
	if short.CorrectFrac() <= long.CorrectFrac() {
		t.Errorf("no degradation: short %.3f vs long %.3f",
			short.CorrectFrac(), long.CorrectFrac())
	}
	if long.Incorrect == 0 {
		t.Error("long trace should contain silently wrong recoveries")
	}
}

func TestRecoverRejectsCalls(t *testing.T) {
	src := `
func f(int x) int { return x + 1; }
func main() int {
	int z = f(1) & 0;
	return 100 / z;
}`
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	ring := pt.NewRing(1 << 20)
	enc := pt.NewEncoder(ring)
	res := vm.New(mod, vm.Config{Tracer: enc}).Run("main")
	enc.Finish()
	tr, _ := pt.Decode(ring)
	_, err = rept.Recover(mod, "main", tr, res.Dump, res.Failure.InstrID, nil)
	if err == nil {
		t.Error("expected error for program with calls")
	}
}
