package rr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"execrecon/internal/ir"
	"execrecon/internal/vm"
)

// Log serialization: record/replay systems persist their logs so
// failures captured in production can be replayed in-house. The
// format is a small length-prefixed binary encoding:
//
//	magic "ERRR" | version u8 | seed varint |
//	nInputs varint | per input: tagLen varint, tag, width u8, value varint |
//	hasFailure u8 [ | kind u8, func string, instrID varint ]

const logMagic = "ERRR"
const logVersion = 1

// Encode writes the log to w.
func (l *Log) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(logMagic); err != nil {
		return err
	}
	bw.WriteByte(logVersion)
	var buf [binary.MaxVarintLen64]byte
	putU := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		bw.Write(buf[:n])
	}
	putS := func(s string) {
		putU(uint64(len(s)))
		bw.WriteString(s)
	}
	putU(uint64(l.Seed))
	putU(uint64(len(l.Inputs)))
	for _, ev := range l.Inputs {
		putS(ev.Tag)
		bw.WriteByte(byte(ev.Width))
		putU(ev.Value)
	}
	if l.Failure == nil {
		bw.WriteByte(0)
	} else {
		bw.WriteByte(1)
		bw.WriteByte(byte(l.Failure.Kind))
		putS(l.Failure.Func)
		putU(uint64(uint32(l.Failure.InstrID)))
	}
	return bw.Flush()
}

// DecodeLog reads a log previously written by Encode.
func DecodeLog(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("rr: reading magic: %w", err)
	}
	if string(magic) != logMagic {
		return nil, fmt.Errorf("rr: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != logVersion {
		return nil, fmt.Errorf("rr: unsupported log version %d", ver)
	}
	getU := func() (uint64, error) { return binary.ReadUvarint(br) }
	getS := func() (string, error) {
		n, err := getU()
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("rr: implausible string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	l := &Log{}
	seed, err := getU()
	if err != nil {
		return nil, err
	}
	l.Seed = int64(seed)
	n, err := getU()
	if err != nil {
		return nil, err
	}
	if n > 1<<28 {
		return nil, fmt.Errorf("rr: implausible input count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		tag, err := getS()
		if err != nil {
			return nil, err
		}
		wb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		v, err := getU()
		if err != nil {
			return nil, err
		}
		l.Inputs = append(l.Inputs, InputEvent{Tag: tag, Width: ir.Width(wb), Value: v})
	}
	hasFail, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if hasFail == 1 {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		fn, err := getS()
		if err != nil {
			return nil, err
		}
		id, err := getU()
		if err != nil {
			return nil, err
		}
		// Only the minimal signature (kind + program counter) is
		// persisted; rr replay regenerates the full state anyway.
		l.Failure = &vm.Failure{Kind: vm.FailKind(kind), Func: fn, InstrID: int32(uint32(id))}
	}
	return l, nil
}
