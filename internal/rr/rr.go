// Package rr implements the full record/replay baseline the paper
// compares against (Mozilla rr, §5.3). The recorder intercepts every
// non-deterministic event — all program input values and the
// scheduler seed (our analog of rr's single-core serialized schedule)
// — into a log from which the execution replays deterministically.
// Recording is maximally effective and accurate (it reproduces any
// failure bit-for-bit), but its interception costs are the source of
// the prohibitive runtime overhead Fig. 6 shows.
package rr

import (
	"execrecon/internal/ir"
	"execrecon/internal/vm"
)

// InputEvent is one intercepted input value.
type InputEvent struct {
	Tag   string
	Width ir.Width
	Value uint64
}

// Log is a complete record of a run's non-determinism.
type Log struct {
	Inputs []InputEvent
	Seed   int64
	// Failure is the recorded outcome (nil for clean runs).
	Failure *vm.Failure
}

// Bytes returns the log payload size, used by the overhead model.
func (l *Log) Bytes() int64 {
	var n int64
	for _, ev := range l.Inputs {
		n += int64(ev.Width.Bytes()) + int64(len(ev.Tag)) + 4
	}
	return n + 8
}

// recorder wraps an InputSource, logging every delivered value.
type recorder struct {
	inner vm.InputSource
	log   *Log
}

func (r *recorder) Next(tag string, w ir.Width) (uint64, bool) {
	v, ok := r.inner.Next(tag, w)
	if ok {
		r.log.Inputs = append(r.log.Inputs, InputEvent{Tag: tag, Width: w, Value: v})
	}
	return v, ok
}

// Record runs mod under full recording and returns the log and the
// run result.
func Record(mod *ir.Module, input vm.InputSource, seed int64) (*Log, *vm.Result) {
	log := &Log{Seed: seed}
	rec := &recorder{inner: input, log: log}
	res := vm.New(mod, vm.Config{Input: rec, Seed: seed}).Run("main")
	log.Failure = res.Failure
	return log, res
}

// replaySource replays logged inputs in order, checking stream tags.
type replaySource struct {
	log *Log
	pos int
}

func (r *replaySource) Next(tag string, w ir.Width) (uint64, bool) {
	for i := r.pos; i < len(r.log.Inputs); i++ {
		// Inputs replay strictly in order; a tag mismatch means the
		// replayed execution diverged, which full record/replay
		// precludes under an identical schedule. Scan forward
		// defensively anyway.
		if r.log.Inputs[i].Tag == tag {
			if i != r.pos {
				break
			}
			r.pos++
			return r.log.Inputs[i].Value, true
		}
		break
	}
	return 0, false
}

// Replay re-executes mod from the log, returning the replayed result.
// With the same seed the chunked scheduler reproduces the identical
// interleaving, so the replay is bit-exact.
func Replay(mod *ir.Module, log *Log) *vm.Result {
	return vm.New(mod, vm.Config{Input: &replaySource{log: log}, Seed: log.Seed}).Run("main")
}
