package rr_test

import (
	"bytes"
	"testing"

	"execrecon/internal/minc"
	"execrecon/internal/rr"
	"execrecon/internal/vm"
)

const rrProg = `
int acc = 0;
func main() int {
	int n = input32("n");
	if (n < 0 || n > 100) { return -1; }
	for (int i = 0; i < n; i = i + 1) {
		acc = acc + input32("data") * (i + 1);
		output(acc);
	}
	assert(acc != 140, "acc hit 140");
	return acc;
}`

func TestRecordReplayBitExact(t *testing.T) {
	mod, err := minc.Compile("t", rrProg)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorkload().Add("n", 3).Add("data", 5, 10, 20)
	log, res := rr.Record(mod, w, 7)
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	if len(log.Inputs) != 4 {
		t.Fatalf("recorded %d inputs, want 4", len(log.Inputs))
	}
	rep := rr.Replay(mod, log)
	if rep.Failure != nil {
		t.Fatalf("replay failed: %v", rep.Failure)
	}
	if len(rep.Output) != len(res.Output) {
		t.Fatalf("output lengths differ: %d vs %d", len(rep.Output), len(res.Output))
	}
	for i := range res.Output {
		if rep.Output[i] != res.Output[i] {
			t.Errorf("output[%d]: %d vs %d", i, rep.Output[i], res.Output[i])
		}
	}
}

func TestRecordReplayFailure(t *testing.T) {
	mod, err := minc.Compile("t", rrProg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 + 20*2 + 30*3 = 140 -> assert fires.
	w := vm.NewWorkload().Add("n", 3).Add("data", 10, 20, 30)
	log, res := rr.Record(mod, w, 1)
	if res.Failure == nil {
		t.Fatal("expected failure")
	}
	if log.Failure == nil || !log.Failure.SameSignature(res.Failure) {
		t.Error("failure not captured in log")
	}
	rep := rr.Replay(mod, log)
	if rep.Failure == nil || !rep.Failure.SameSignature(res.Failure) {
		t.Fatalf("replayed failure differs: %v", rep.Failure)
	}
}

func TestRecordReplayMultithreaded(t *testing.T) {
	src := `
int shared = 0;
func worker(int n) {
	for (int i = 0; i < n; i = i + 1) {
		int v = shared;
		yield();
		shared = v + input32("w");
	}
}
func main() int {
	long t1 = spawn worker(5);
	long t2 = spawn worker(5);
	join(t1);
	join(t2);
	output(shared);
	return 0;
}`
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorkload().Add("w", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	log, res := rr.Record(mod, w, 13)
	rep := rr.Replay(mod, log)
	if res.Failure != nil || rep.Failure != nil {
		t.Fatalf("failures: %v / %v", res.Failure, rep.Failure)
	}
	// Identical seed → identical schedule → identical (racy) result.
	if rep.Output[0] != res.Output[0] {
		t.Errorf("racy result not replayed: %d vs %d", rep.Output[0], res.Output[0])
	}
}

func TestLogBytes(t *testing.T) {
	mod, err := minc.Compile("t", rrProg)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorkload().Add("n", 2).Add("data", 1, 2)
	log, _ := rr.Record(mod, w, 1)
	if log.Bytes() <= 0 {
		t.Error("log bytes not accounted")
	}
}

func TestLogEncodeDecodeRoundTrip(t *testing.T) {
	mod, err := minc.Compile("t", rrProg)
	if err != nil {
		t.Fatal(err)
	}
	w := vm.NewWorkload().Add("n", 3).Add("data", 10, 20, 30)
	log, res := rr.Record(mod, w, 99)
	if res.Failure == nil {
		t.Fatal("expected recorded failure")
	}
	var buf bytes.Buffer
	if err := log.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := rr.DecodeLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != log.Seed || len(back.Inputs) != len(log.Inputs) {
		t.Fatalf("header mismatch: %+v vs %+v", back, log)
	}
	for i := range log.Inputs {
		if back.Inputs[i] != log.Inputs[i] {
			t.Errorf("input %d: %+v vs %+v", i, back.Inputs[i], log.Inputs[i])
		}
	}
	if back.Failure == nil || back.Failure.Func != log.Failure.Func ||
		back.Failure.Kind != log.Failure.Kind || back.Failure.InstrID != log.Failure.InstrID {
		t.Errorf("failure signature mismatch: %+v vs %+v", back.Failure, log.Failure)
	}
	// The decoded log replays to the identical failure.
	rep := rr.Replay(mod, back)
	if rep.Failure == nil || !rep.Failure.SameSignature(res.Failure) {
		t.Fatalf("decoded log replays differently: %v", rep.Failure)
	}
}

func TestDecodeLogRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("ERRR\xff"),         // bad version
		[]byte("ERRR\x01\x05\x05"), // truncated
	}
	for i, c := range cases {
		if _, err := rr.DecodeLog(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}
