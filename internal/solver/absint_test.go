package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"execrecon/internal/expr"
	"execrecon/internal/telemetry"
)

// genAbsintQuery builds a random constraint set over b that mixes the
// shapes the abstract pre-discharge pass understands (interval
// comparisons, masks, zero extensions) with shapes it must pass
// through (multiplication, array selects). Half the trials embed a
// hidden witness so satisfiable and unsatisfiable sets both occur.
func genAbsintQuery(b *expr.Builder, rng *rand.Rand) []*expr.Expr {
	const w = 16
	vars := []*expr.Expr{b.Var("a", w), b.Var("b", w), b.Var("c", 8)}
	witness := expr.NewAssignment()
	for _, v := range vars {
		witness.Vars[v.Name] = expr.Truncate(rng.Uint64(), v.Width)
	}
	term := func() *expr.Expr {
		v := vars[rng.Intn(2)]
		switch rng.Intn(6) {
		case 0:
			return v
		case 1:
			return b.Add(v, b.Const(uint64(rng.Intn(256)), w))
		case 2:
			return b.And(v, b.Const(expr.Truncate(rng.Uint64(), w), w))
		case 3:
			return b.ZExt(vars[2], w)
		case 4:
			return b.Mul(v, b.Const(uint64(rng.Intn(7)), w))
		default:
			return b.LShr(v, b.Const(uint64(rng.Intn(20)), w))
		}
	}
	pinned := rng.Intn(2) == 0
	var cs []*expr.Expr
	for k := 0; k < 2+rng.Intn(3); k++ {
		l := term()
		var r *expr.Expr
		if pinned {
			// Right side evaluated under the witness: the set stays
			// satisfiable for Eq/Ule goals, forcing absint to either
			// agree on Sat or stay Unknown — never Unsat.
			r = b.Const(witness.MustEval(l), w)
		} else {
			r = b.Const(uint64(rng.Intn(1<<w)), w)
		}
		switch rng.Intn(3) {
		case 0:
			cs = append(cs, b.Eq(l, r))
		case 1:
			cs = append(cs, b.Ule(l, r))
		default:
			cs = append(cs, b.Ult(r, b.Add(l, b.Const(1, w))))
		}
	}
	if rng.Intn(3) == 0 {
		// An array read keeps the elimination + Ackermann path live so
		// absint lemmas flow through the same rewrite as constraints.
		arr := b.ConstArray(b.Const(0, 8), 32)
		arr = b.Store(arr, b.Const(uint64(rng.Intn(16)), 32), vars[2])
		sel := b.Select(arr, b.ZExt(b.And(vars[2], b.Const(0xF, 8)), 32))
		cs = append(cs, b.Ule(b.ZExt(sel, w), b.Const(uint64(200+rng.Intn(56)), w)))
	}
	return cs
}

// TestAbsintDifferentialOneShot races the one-shot solver with the
// abstract pre-discharge pass on against the plain solver on the same
// random queries: verdicts must agree exactly, and at least some
// queries must actually discharge (otherwise the pass is dead code).
func TestAbsintDifferentialOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	discharged, narrowed := 0, 0
	for trial := 0; trial < 300; trial++ {
		b := expr.NewBuilder()
		cs := genAbsintQuery(b, rng)
		plain := New(b, DefaultOptions())
		pres, _, perr := plain.Solve(cs)
		on := New(b, Options{Validate: true, Absint: true})
		ares, amodel, aerr := on.Solve(cs)
		if perr != nil || aerr != nil {
			t.Fatalf("trial %d: errors plain=%v absint=%v", trial, perr, aerr)
		}
		if pres != ares {
			t.Fatalf("trial %d: verdict mismatch plain=%v absint=%v on %v", trial, pres, ares, cs)
		}
		if ares == ResultSat {
			if ok, err := amodel.Satisfies(cs); err != nil || !ok {
				t.Fatalf("trial %d: absint-path model invalid (ok=%v err=%v)", trial, ok, err)
			}
		}
		if on.LastStats().AbsintDischarged {
			discharged++
		}
		narrowed += on.LastStats().AbsintBits
	}
	if discharged == 0 {
		t.Fatalf("pre-discharge never fired across 300 random queries")
	}
	if narrowed == 0 {
		t.Fatalf("bit narrowing never pinned a variable bit across 300 random queries")
	}
}

// TestAbsintDifferentialIncremental drives one persistent session with
// absint enabled against per-query fresh baseline solves. The session
// accumulates universal lemmas and refined-fact assumptions across
// queries; any unsoundness there shows up as a verdict flip or an
// invalid model.
func TestAbsintDifferentialIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	reg := telemetry.New()
	inc := NewIncremental(Options{Validate: true, Absint: true, Metrics: reg})
	for trial := 0; trial < 200; trial++ {
		b := expr.NewBuilder()
		cs := genAbsintQuery(b, rng)
		plain := New(b, DefaultOptions())
		pres, _, perr := plain.Solve(cs)
		ires, imodel, ierr := inc.Solve(cs)
		if perr != nil || ierr != nil {
			t.Fatalf("trial %d: errors plain=%v inc=%v", trial, perr, ierr)
		}
		if pres != ires {
			t.Fatalf("trial %d: verdict mismatch plain=%v incremental=%v", trial, pres, ires)
		}
		if ires == ResultSat {
			if ok, err := imodel.Satisfies(cs); err != nil || !ok {
				t.Fatalf("trial %d: incremental model invalid (ok=%v err=%v)", trial, ok, err)
			}
		}
	}
	st := inc.Stats()
	if st.FreshFallbacks != 0 {
		t.Fatalf("session poisoned %d times — absint state corrupted the caches", st.FreshFallbacks)
	}
	if st.AbsintDischarged == 0 {
		t.Fatalf("incremental pre-discharge never fired across 200 queries")
	}
	if st.AbsintFacts == 0 {
		t.Fatalf("no refined facts were ever assumed across 200 queries")
	}
	// The er_absint_* series must mirror the session counters.
	series := map[string]int64{}
	for _, fam := range reg.Snapshot() {
		for _, s := range fam.Series {
			series[fam.Name] += int64(s.Value)
		}
	}
	if got := series["er_absint_discharged_total"]; got != st.AbsintDischarged {
		t.Fatalf("er_absint_discharged_total=%d, session says %d", got, st.AbsintDischarged)
	}
	if got := series["er_absint_facts_total"]; got != st.AbsintFacts {
		t.Fatalf("er_absint_facts_total=%d, session says %d", got, st.AbsintFacts)
	}
	if got := series["er_absint_lemmas_total"]; got != st.AbsintLemmas {
		t.Fatalf("er_absint_lemmas_total=%d, session says %d", got, st.AbsintLemmas)
	}
}

// TestAbsintSolvesStoreChains checks absint does not disturb the
// array-heavy stall workloads the reconstruction loop leans on.
func TestAbsintSolvesStoreChains(t *testing.T) {
	b := expr.NewBuilder()
	arr := b.ConstArray(b.Const(0, 8), 32)
	for i := 0; i < 8; i++ {
		arr = b.Store(arr, b.Var(fmt.Sprintf("i%d", i), 32), b.Const(uint64(i), 8))
	}
	sel := b.Select(arr, b.Var("j", 32))
	cs := []*expr.Expr{b.Eq(sel, b.Const(5, 8))}
	s := New(b, Options{Validate: true, Absint: true})
	res, model, err := s.Solve(cs)
	if err != nil || res != ResultSat {
		t.Fatalf("store chain under absint: %v %v", res, err)
	}
	if ok, err := model.Satisfies(cs); err != nil || !ok {
		t.Fatalf("store-chain model invalid (ok=%v err=%v)", ok, err)
	}
}
