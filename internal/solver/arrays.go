package solver

import (
	"fmt"

	"execrecon/internal/expr"
)

// arrayElim rewrites constraints into pure bitvector form.
//
// Reads through store chains become if-then-else ladders:
//
//	Select(Store(a, i, v), j)  ⇒  Ite(j == i, v, Select(a, j))
//
// so the formula size (and hence solver work) grows with the length
// of the symbolic write chain — the first complexity source of
// §3.3.1. Reads from free arrays are Ackermannized: each distinct
// read becomes a fresh variable, with pairwise functional-consistency
// constraints; objects read at many symbolic offsets therefore cost
// quadratically — the second complexity source (large symbolic
// memory objects).
type arrayElim struct {
	b      *expr.Builder
	budget *Budget

	cache     map[*expr.Expr]*expr.Expr
	selCache  map[[2]uint64]*expr.Expr
	reads     map[string][]readTerm // array var name -> reads
	readOrder []string              // array names in first-read order
	readElems map[string]uint       // element width per array var
	// closed[name] counts the prefix of reads[name] whose pairwise
	// functional-consistency constraints were already emitted, so
	// incremental sessions only pay for pairs involving new reads.
	closed map[string]int
	side   []*expr.Expr
	fresh  int
	err    error
}

type readTerm struct {
	idx *expr.Expr // rewritten index
	v   *expr.Expr // fresh variable standing for the read value
}

var errBudget = fmt.Errorf("solver: budget exhausted")

func newArrayElim(b *expr.Builder, budget *Budget) *arrayElim {
	return &arrayElim{
		b:         b,
		budget:    budget,
		cache:     make(map[*expr.Expr]*expr.Expr),
		selCache:  make(map[[2]uint64]*expr.Expr),
		reads:     make(map[string][]readTerm),
		readElems: make(map[string]uint),
		closed:    make(map[string]int),
	}
}

// run rewrites each constraint, returning the pure-bitvector
// constraint set including Ackermann side conditions.
func (a *arrayElim) run(cs []*expr.Expr) ([]*expr.Expr, error) {
	out := make([]*expr.Expr, 0, len(cs))
	for _, c := range cs {
		r := a.rewrite(c)
		if a.err != nil {
			return nil, a.err
		}
		out = append(out, r)
	}
	lemmas, err := a.consistencyDelta()
	if err != nil {
		return nil, err
	}
	return append(append(out, lemmas...), a.side...), nil
}

// clearBudgetErr resets a sticky budget-exhaustion error so a
// persistent session can retry the failed work under the next query's
// fresh budget. Real (semantic) errors stay sticky.
func (a *arrayElim) clearBudgetErr() {
	if a.err == errBudget {
		a.err = nil
	}
}

// consistencyDelta emits the Ackermann functional-consistency
// constraints for every read registered since the previous call: each
// new read of a free array is paired against all earlier reads of the
// same array. For a fresh arrayElim this is exactly the full pairwise
// closure; for a long-lived session it is the incremental slice, so
// repeated queries over a growing constraint set pay quadratic cost
// only once rather than once per query. The returned constraints are
// consequences of the array axioms (valid lemmas), so callers may
// assert them persistently. Each array's closed-watermark advances
// only after all of its new pairs were emitted; on budget exhaustion
// the constraints emitted so far are still returned (alongside the
// error) so sessions can keep them and retry only the remainder.
func (a *arrayElim) consistencyDelta() ([]*expr.Expr, error) {
	var out []*expr.Expr
	// Iterate arrays in first-read order, not map order: lemma order
	// decides clause and watcher order in the SAT core, and through
	// them which of several models the search finds — map iteration
	// here made whole reconstruction runs differ from process to
	// process.
	for _, name := range a.readOrder {
		rs := a.reads[name]
		from := a.closed[name]
		if from >= len(rs) {
			continue
		}
		for j := from; j < len(rs); j++ {
			for i := 0; i < j; i++ {
				if !a.budget.spend(2) {
					return out, errBudget
				}
				imp := a.b.Implies(a.b.Eq(rs[i].idx, rs[j].idx), a.b.Eq(rs[i].v, rs[j].v))
				out = append(out, imp)
			}
		}
		a.closed[name] = len(rs)
	}
	return out, nil
}

func (a *arrayElim) rewrite(e *expr.Expr) *expr.Expr {
	if a.err != nil {
		return e
	}
	if r, ok := a.cache[e]; ok {
		return r
	}
	if !a.budget.spend(1) {
		a.err = errBudget
		return e
	}
	var r *expr.Expr
	switch e.Kind {
	case expr.KConst, expr.KVar:
		r = e
	case expr.KSelect:
		idx := a.rewrite(e.Args[1])
		if a.err != nil {
			return e
		}
		r = a.selectOf(e.Args[0], idx)
	case expr.KArrayVar, expr.KStore, expr.KConstArray:
		// Array-sorted nodes are handled via selectOf by their
		// consumers; they should not be rewritten standalone.
		a.err = fmt.Errorf("solver: standalone array term %s in constraint", e.Kind)
		return e
	default:
		args := make([]*expr.Expr, len(e.Args))
		changed := false
		for i, arg := range e.Args {
			args[i] = a.rewrite(arg)
			if args[i] != arg {
				changed = true
			}
		}
		if a.err != nil {
			return e
		}
		if !changed {
			r = e
		} else {
			r = a.rebuild(e, args)
		}
	}
	a.cache[e] = r
	return r
}

// selectOf lowers a read of arr at (already rewritten) index idx.
func (a *arrayElim) selectOf(arr, idx *expr.Expr) *expr.Expr {
	key := [2]uint64{arr.ID(), idx.ID()}
	if r, ok := a.selCache[key]; ok {
		return r
	}
	if !a.budget.spend(2) {
		a.err = errBudget
		return idx
	}
	var r *expr.Expr
	switch arr.Kind {
	case expr.KStore:
		si := a.rewrite(arr.Args[1])
		sv := a.rewrite(arr.Args[2])
		if a.err != nil {
			return idx
		}
		rest := a.selectOf(arr.Args[0], idx)
		if a.err != nil {
			return idx
		}
		r = a.b.Ite(a.b.Eq(idx, si), sv, rest)
	case expr.KConstArray:
		r = a.rewrite(arr.Args[0])
	case expr.KIte:
		cond := a.rewrite(arr.Args[0])
		t := a.selectOf(arr.Args[1], idx)
		f := a.selectOf(arr.Args[2], idx)
		if a.err != nil {
			return idx
		}
		r = a.b.Ite(cond, t, f)
	case expr.KArrayVar:
		if idx.IsConst() {
			// Reads at distinct constants are independent; name
			// them canonically so repeats share a variable and
			// need no Ackermann treatment against each other.
			r = a.b.Var(fmt.Sprintf("%s@%d", arr.Name, idx.Val), arr.Width)
		} else {
			a.fresh++
			r = a.b.Var(fmt.Sprintf("$rd%d!%s", a.fresh, arr.Name), arr.Width)
		}
		if len(a.reads[arr.Name]) == 0 {
			a.readOrder = append(a.readOrder, arr.Name)
		}
		a.reads[arr.Name] = append(a.reads[arr.Name], readTerm{idx: idx, v: r})
		a.readElems[arr.Name] = arr.Width
	default:
		a.err = fmt.Errorf("solver: select of %s", arr.Kind)
		return idx
	}
	a.selCache[key] = r
	return r
}

// rebuild re-creates node e with new arguments through the builder so
// simplifications re-apply.
func (a *arrayElim) rebuild(e *expr.Expr, args []*expr.Expr) *expr.Expr {
	b := a.b
	switch e.Kind {
	case expr.KAdd:
		return b.Add(args[0], args[1])
	case expr.KSub:
		return b.Sub(args[0], args[1])
	case expr.KMul:
		return b.Mul(args[0], args[1])
	case expr.KUDiv:
		return b.UDiv(args[0], args[1])
	case expr.KURem:
		return b.URem(args[0], args[1])
	case expr.KSDiv:
		return b.SDiv(args[0], args[1])
	case expr.KSRem:
		return b.SRem(args[0], args[1])
	case expr.KAnd:
		return b.And(args[0], args[1])
	case expr.KOr:
		return b.Or(args[0], args[1])
	case expr.KXor:
		return b.Xor(args[0], args[1])
	case expr.KNot:
		return b.Not(args[0])
	case expr.KNeg:
		return b.Neg(args[0])
	case expr.KShl:
		return b.Shl(args[0], args[1])
	case expr.KLShr:
		return b.LShr(args[0], args[1])
	case expr.KAShr:
		return b.AShr(args[0], args[1])
	case expr.KEq:
		return b.Eq(args[0], args[1])
	case expr.KUlt:
		return b.Ult(args[0], args[1])
	case expr.KUle:
		return b.Ule(args[0], args[1])
	case expr.KSlt:
		return b.Slt(args[0], args[1])
	case expr.KSle:
		return b.Sle(args[0], args[1])
	case expr.KIte:
		return b.Ite(args[0], args[1], args[2])
	case expr.KConcat:
		return b.Concat(args[0], args[1])
	case expr.KExtract:
		return b.Extract(args[0], e.Lo, e.Width)
	case expr.KZExt:
		return b.ZExt(args[0], e.Width)
	case expr.KSExt:
		return b.SExt(args[0], e.Width)
	}
	a.err = fmt.Errorf("solver: rebuild of %s", e.Kind)
	return e
}
