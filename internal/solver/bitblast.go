package solver

import (
	"fmt"

	"execrecon/internal/absint"
	"execrecon/internal/expr"
)

// blaster lowers pure bitvector expressions to CNF via a Tseitin
// transformation, producing one SAT literal per bit.
type blaster struct {
	s      *sat
	budget *Budget

	litTrue  lit
	litFalse lit

	bits map[*expr.Expr][]lit
	vars map[string][]lit // expr var name -> bit literals

	// narrow, when set, pins variable bits the abstract interpreter
	// proved constant for every model of the current query. Must stay
	// nil for incremental sessions, whose cached var literals outlive
	// any one query's refinement.
	narrow       map[string]absint.Val
	bitsNarrowed int

	err error
}

func newBlaster(s *sat, budget *Budget) *blaster {
	b := &blaster{
		s:      s,
		budget: budget,
		bits:   make(map[*expr.Expr][]lit),
		vars:   make(map[string][]lit),
	}
	tv := s.newVar()
	b.litTrue = mkLit(tv, false)
	b.litFalse = b.litTrue.negate()
	if !s.addClause([]lit{b.litTrue}) {
		b.err = fmt.Errorf("solver: inconsistent true literal")
	}
	return b
}

func (b *blaster) constLit(v bool) lit {
	if v {
		return b.litTrue
	}
	return b.litFalse
}

func (b *blaster) isConstLit(l lit) (bool, bool) {
	if l == b.litTrue {
		return true, true
	}
	if l == b.litFalse {
		return false, true
	}
	return false, false
}

func (b *blaster) freshLit() lit { return mkLit(b.s.newVar(), false) }

func (b *blaster) spend(n int64) bool {
	if !b.budget.spend(n) {
		b.err = errBudget
		return false
	}
	return true
}

// gateAnd returns a literal equivalent to x ∧ y.
func (b *blaster) gateAnd(x, y lit) lit {
	if v, ok := b.isConstLit(x); ok {
		if v {
			return y
		}
		return b.litFalse
	}
	if v, ok := b.isConstLit(y); ok {
		if v {
			return x
		}
		return b.litFalse
	}
	if x == y {
		return x
	}
	if x == y.negate() {
		return b.litFalse
	}
	if !b.spend(1) {
		return b.litFalse
	}
	o := b.freshLit()
	b.s.addClause([]lit{x.negate(), y.negate(), o})
	b.s.addClause([]lit{x, o.negate()})
	b.s.addClause([]lit{y, o.negate()})
	return o
}

func (b *blaster) gateOr(x, y lit) lit {
	return b.gateAnd(x.negate(), y.negate()).negate()
}

// gateXor returns a literal equivalent to x ⊕ y.
func (b *blaster) gateXor(x, y lit) lit {
	if v, ok := b.isConstLit(x); ok {
		if v {
			return y.negate()
		}
		return y
	}
	if v, ok := b.isConstLit(y); ok {
		if v {
			return x.negate()
		}
		return x
	}
	if x == y {
		return b.litFalse
	}
	if x == y.negate() {
		return b.litTrue
	}
	if !b.spend(1) {
		return b.litFalse
	}
	o := b.freshLit()
	b.s.addClause([]lit{x.negate(), y.negate(), o.negate()})
	b.s.addClause([]lit{x, y, o.negate()})
	b.s.addClause([]lit{x.negate(), y, o})
	b.s.addClause([]lit{x, y.negate(), o})
	return o
}

// gateMux returns c ? x : y.
func (b *blaster) gateMux(c, x, y lit) lit {
	if v, ok := b.isConstLit(c); ok {
		if v {
			return x
		}
		return y
	}
	if x == y {
		return x
	}
	return b.gateOr(b.gateAnd(c, x), b.gateAnd(c.negate(), y))
}

// fullAdder returns (sum, carry).
func (b *blaster) fullAdder(x, y, cin lit) (lit, lit) {
	s1 := b.gateXor(x, y)
	sum := b.gateXor(s1, cin)
	c1 := b.gateAnd(x, y)
	c2 := b.gateAnd(s1, cin)
	return sum, b.gateOr(c1, c2)
}

// addBits returns x + y (+1 if cin) over equal-length bit slices.
func (b *blaster) addBits(x, y []lit, cin lit) []lit {
	out := make([]lit, len(x))
	c := cin
	for i := range x {
		out[i], c = b.fullAdder(x[i], y[i], c)
	}
	return out
}

func (b *blaster) negBits(x []lit) []lit {
	inv := make([]lit, len(x))
	for i, l := range x {
		inv[i] = l.negate()
	}
	zero := make([]lit, len(x))
	for i := range zero {
		zero[i] = b.litFalse
	}
	return b.addBits(inv, zero, b.litTrue)
}

// ultBits returns the literal for unsigned x < y.
func (b *blaster) ultBits(x, y []lit) lit {
	// lt_i = (¬x_i ∧ y_i) ∨ ((x_i ≡ y_i) ∧ lt_{i-1}), msb last.
	lt := b.litFalse
	for i := 0; i < len(x); i++ {
		eqi := b.gateXor(x[i], y[i]).negate()
		lt = b.gateOr(b.gateAnd(x[i].negate(), y[i]), b.gateAnd(eqi, lt))
	}
	return lt
}

func (b *blaster) eqBits(x, y []lit) lit {
	acc := b.litTrue
	for i := range x {
		acc = b.gateAnd(acc, b.gateXor(x[i], y[i]).negate())
	}
	return acc
}

func (b *blaster) orAll(ls []lit) lit {
	acc := b.litFalse
	for _, l := range ls {
		acc = b.gateOr(acc, l)
	}
	return acc
}

func (b *blaster) muxBits(c lit, x, y []lit) []lit {
	out := make([]lit, len(x))
	for i := range x {
		out[i] = b.gateMux(c, x[i], y[i])
	}
	return out
}

// dummy returns a placeholder bit slice used once an error is
// recorded, so partially-blasted parents never index nil slices.
func (b *blaster) dummy(w int) []lit {
	out := make([]lit, w)
	for i := range out {
		out[i] = b.litFalse
	}
	return out
}

// blast returns the bit literals (LSB first) for a pure bitvector
// expression.
func (b *blaster) blast(e *expr.Expr) []lit {
	w := int(e.Width)
	if b.err != nil {
		return b.dummy(w)
	}
	if bs, ok := b.bits[e]; ok {
		return bs
	}
	if !b.spend(1) {
		return b.dummy(w)
	}
	var out []lit
	switch e.Kind {
	case expr.KConst:
		out = make([]lit, w)
		for i := 0; i < w; i++ {
			out[i] = b.constLit(e.Val>>uint(i)&1 == 1)
		}
	case expr.KVar:
		out = make([]lit, w)
		nv, pin := b.narrow[e.Name]
		for i := 0; i < w; i++ {
			if pin && nv.Mask>>uint(i)&1 == 1 {
				out[i] = b.constLit(nv.Bits>>uint(i)&1 == 1)
				b.bitsNarrowed++
			} else {
				out[i] = b.freshLit()
			}
		}
		b.vars[e.Name] = out
	case expr.KAdd:
		out = b.addBits(b.blast(e.Args[0]), b.blast(e.Args[1]), b.litFalse)
	case expr.KSub:
		y := b.blast(e.Args[1])
		inv := make([]lit, len(y))
		for i, l := range y {
			inv[i] = l.negate()
		}
		out = b.addBits(b.blast(e.Args[0]), inv, b.litTrue)
	case expr.KNeg:
		out = b.negBits(b.blast(e.Args[0]))
	case expr.KMul:
		x, y := b.blast(e.Args[0]), b.blast(e.Args[1])
		acc := make([]lit, w)
		for i := range acc {
			acc[i] = b.litFalse
		}
		for i := 0; i < w; i++ {
			// partial product: (x << i) & y_i
			pp := make([]lit, w)
			for j := 0; j < w; j++ {
				if j < i {
					pp[j] = b.litFalse
				} else {
					pp[j] = b.gateAnd(x[j-i], y[i])
				}
			}
			acc = b.addBits(acc, pp, b.litFalse)
		}
		out = acc
	case expr.KUDiv, expr.KURem, expr.KSDiv, expr.KSRem:
		out = b.blastDiv(e)
	case expr.KAnd, expr.KOr, expr.KXor:
		x, y := b.blast(e.Args[0]), b.blast(e.Args[1])
		out = make([]lit, w)
		for i := 0; i < w; i++ {
			switch e.Kind {
			case expr.KAnd:
				out[i] = b.gateAnd(x[i], y[i])
			case expr.KOr:
				out[i] = b.gateOr(x[i], y[i])
			default:
				out[i] = b.gateXor(x[i], y[i])
			}
		}
	case expr.KNot:
		x := b.blast(e.Args[0])
		out = make([]lit, w)
		for i := range x {
			out[i] = x[i].negate()
		}
	case expr.KShl, expr.KLShr, expr.KAShr:
		out = b.blastShift(e)
	case expr.KEq:
		out = []lit{b.eqBits(b.blast(e.Args[0]), b.blast(e.Args[1]))}
	case expr.KUlt:
		out = []lit{b.ultBits(b.blast(e.Args[0]), b.blast(e.Args[1]))}
	case expr.KUle:
		out = []lit{b.ultBits(b.blast(e.Args[1]), b.blast(e.Args[0])).negate()}
	case expr.KSlt, expr.KSle:
		x, y := b.blast(e.Args[0]), b.blast(e.Args[1])
		// Flip sign bits to map signed order onto unsigned order.
		xf := append([]lit{}, x...)
		yf := append([]lit{}, y...)
		xf[len(xf)-1] = x[len(x)-1].negate()
		yf[len(yf)-1] = y[len(y)-1].negate()
		if e.Kind == expr.KSlt {
			out = []lit{b.ultBits(xf, yf)}
		} else {
			out = []lit{b.ultBits(yf, xf).negate()}
		}
	case expr.KIte:
		c := b.blast(e.Args[0])
		out = b.muxBits(c[0], b.blast(e.Args[1]), b.blast(e.Args[2]))
	case expr.KConcat:
		hi, lo := b.blast(e.Args[0]), b.blast(e.Args[1])
		out = append(append([]lit{}, lo...), hi...)
	case expr.KExtract:
		x := b.blast(e.Args[0])
		out = append([]lit{}, x[e.Lo:e.Lo+e.Width]...)
	case expr.KZExt:
		x := b.blast(e.Args[0])
		out = append([]lit{}, x...)
		for len(out) < w {
			out = append(out, b.litFalse)
		}
	case expr.KSExt:
		x := b.blast(e.Args[0])
		out = append([]lit{}, x...)
		sign := x[len(x)-1]
		for len(out) < w {
			out = append(out, sign)
		}
	default:
		b.err = fmt.Errorf("solver: cannot bit-blast %s", e.Kind)
		return b.dummy(w)
	}
	if b.err != nil {
		return b.dummy(w)
	}
	b.bits[e] = out
	return out
}

// blastShift lowers shifts with a barrel shifter.
func (b *blaster) blastShift(e *expr.Expr) []lit {
	w := int(e.Width)
	x := b.blast(e.Args[0])
	sh := b.blast(e.Args[1])
	if b.err != nil {
		return b.dummy(w)
	}
	cur := append([]lit{}, x...)
	fill := b.litFalse
	if e.Kind == expr.KAShr {
		fill = x[w-1]
	}
	stages := 0
	for 1<<uint(stages) < w {
		stages++
	}
	for k := 0; k < stages; k++ {
		amt := 1 << uint(k)
		shifted := make([]lit, w)
		for i := 0; i < w; i++ {
			switch e.Kind {
			case expr.KShl:
				if i >= amt {
					shifted[i] = cur[i-amt]
				} else {
					shifted[i] = b.litFalse
				}
			default: // LShr, AShr
				if i+amt < w {
					shifted[i] = cur[i+amt]
				} else {
					shifted[i] = fill
				}
			}
		}
		cur = b.muxBits(sh[k], shifted, cur)
	}
	// If any shift bit at position >= stages is set, the shift
	// amount is >= w.
	var high []lit
	for i := stages; i < len(sh); i++ {
		high = append(high, sh[i])
	}
	if len(high) > 0 {
		over := b.orAll(high)
		full := make([]lit, w)
		for i := range full {
			full[i] = fill
		}
		cur = b.muxBits(over, full, cur)
	}
	return cur
}

// blastDiv lowers division and remainder with a restoring long
// division circuit, with SMT-LIB semantics for zero divisors.
func (b *blaster) blastDiv(e *expr.Expr) []lit {
	w := int(e.Width)
	x := b.blast(e.Args[0])
	y := b.blast(e.Args[1])
	if b.err != nil {
		return b.dummy(w)
	}
	signed := e.Kind == expr.KSDiv || e.Kind == expr.KSRem
	xs, ys := x, y
	var sx, sy lit
	if signed {
		sx, sy = x[w-1], y[w-1]
		xs = b.muxBits(sx, b.negBits(x), x)
		ys = b.muxBits(sy, b.negBits(y), y)
	}
	// Restoring division on the (possibly absolute) values.
	rem := make([]lit, w)
	for i := range rem {
		rem[i] = b.litFalse
	}
	quo := make([]lit, w)
	for i := w - 1; i >= 0; i-- {
		// rem = (rem << 1) | x_i
		rem = append([]lit{xs[i]}, rem[:w-1]...)
		geq := b.ultBits(rem, ys).negate()
		inv := make([]lit, w)
		for j, l := range ys {
			inv[j] = l.negate()
		}
		sub := b.addBits(rem, inv, b.litTrue)
		rem = b.muxBits(geq, sub, rem)
		quo[i] = geq
	}
	var out []lit
	switch e.Kind {
	case expr.KUDiv, expr.KSDiv:
		out = quo
		if signed {
			neg := b.gateXor(sx, sy)
			out = b.muxBits(neg, b.negBits(quo), quo)
		}
	default:
		out = rem
		if signed {
			out = b.muxBits(sx, b.negBits(rem), rem)
		}
	}
	// Zero divisor. SMT-LIB: udiv x 0 = all ones, urem x 0 = x,
	// sdiv x 0 = (x >= 0 ? -1 : 1), srem x 0 = x.
	yZero := b.eqBits(y, b.constBits(0, w))
	var zv []lit
	switch e.Kind {
	case expr.KUDiv:
		zv = b.constBits(^uint64(0), w)
	case expr.KURem, expr.KSRem:
		zv = x
	case expr.KSDiv:
		zv = b.muxBits(x[w-1], b.constBits(1, w), b.constBits(^uint64(0), w))
	}
	return b.muxBits(yZero, zv, out)
}

func (b *blaster) constBits(v uint64, w int) []lit {
	out := make([]lit, w)
	for i := 0; i < w; i++ {
		out[i] = b.constLit(v>>uint(i)&1 == 1)
	}
	return out
}

// clearBudgetErr resets a sticky budget-exhaustion error so a
// persistent session can retry under a fresh budget. The bits cache
// only ever holds fully blasted nodes (partial work is returned as
// uncached dummies), and every clause added so far is a valid Tseitin
// definition of a fresh gate literal, so resuming is sound.
func (b *blaster) clearBudgetErr() {
	if b.err == errBudget {
		b.err = nil
	}
}

// cached reports whether e was already fully blasted — the reuse
// signal incremental sessions surface in their stats.
func (b *blaster) cached(e *expr.Expr) bool {
	_, ok := b.bits[e]
	return ok
}

// boolLit returns the literal equivalent to the boolean expression e,
// without asserting it. The Tseitin definitions emitted along the way
// are valid regardless of whether e itself is ever asserted, which is
// what lets incremental sessions keep them across queries and pass
// constraint literals as CDCL assumptions instead of clauses.
func (b *blaster) boolLit(e *expr.Expr) (lit, bool) {
	bs := b.blast(e)
	if b.err != nil {
		return litUndef, false
	}
	if len(bs) != 1 {
		b.err = fmt.Errorf("solver: non-boolean constraint of width %d", len(bs))
		return litUndef, false
	}
	return bs[0], true
}

// assert adds the constraint that boolean expression e is true.
func (b *blaster) assert(e *expr.Expr) {
	bs := b.blast(e)
	if b.err != nil {
		return
	}
	if len(bs) != 1 {
		b.err = fmt.Errorf("solver: asserting non-boolean of width %d", len(bs))
		return
	}
	if !b.s.addClause([]lit{bs[0]}) {
		// Trivially unsatisfiable; recorded by the caller via
		// solve() returning unsat.
	}
}

// modelVar reads back the model value of a named expression variable.
func (b *blaster) modelVar(name string) (uint64, bool) { return b.modelVarFrom(b.s, name) }

// modelVarFrom reads the variable's bits out of core's model rather
// than the blaster's own core — after a portfolio race the winning
// model may live on a clone, which shares the snapshot's variable
// numbering, so the blaster's literal maps apply unchanged.
func (b *blaster) modelVarFrom(core *sat, name string) (uint64, bool) {
	bs, ok := b.vars[name]
	if !ok {
		return 0, false
	}
	var v uint64
	for i, l := range bs {
		// isConstLit compares against the signed litTrue/litFalse
		// literals, so its answer already folds in l's sign — only
		// model-read bits still need the flip.
		bit, isC := b.isConstLit(l)
		if !isC {
			bit = core.modelValue(l.vindex())
			if l.sign() {
				bit = !bit
			}
		}
		if bit {
			v |= 1 << uint(i)
		}
	}
	return v, true
}
