package solver

import "time"

// Budget meters solver work. Work units are abstract "steps": one SAT
// decision is 1, one conflict 50, one Tseitin gate 1, one node created
// during array elimination 1. A Budget with zero MaxSteps and zero
// Deadline is unlimited.
//
// The paper configures a 30-second solver timeout (§4); callers of
// this package express that timeout as a Deadline, with MaxSteps as a
// determinism-friendly stand-in used throughout the test suite and
// benchmark harness.
type Budget struct {
	MaxSteps int64
	Deadline time.Time

	used      int64
	lastCheck int64
	exhausted bool
}

// NewBudget returns a budget limited to maxSteps (0 = unlimited).
func NewBudget(maxSteps int64) *Budget { return &Budget{MaxSteps: maxSteps} }

// spend consumes n steps and reports whether the budget still holds.
func (b *Budget) spend(n int64) bool {
	if b == nil {
		return true
	}
	b.used += n
	if b.MaxSteps > 0 && b.used > b.MaxSteps {
		b.exhausted = true
		return false
	}
	// Check the wall clock at most every 4096 steps.
	if !b.Deadline.IsZero() && b.used-b.lastCheck > 4096 {
		b.lastCheck = b.used
		if time.Now().After(b.Deadline) {
			b.exhausted = true
			return false
		}
	}
	return true
}

// Used returns the steps consumed so far.
func (b *Budget) Used() int64 { return b.used }

// Exhausted reports whether the budget was exceeded.
func (b *Budget) Exhausted() bool { return b.exhausted }
