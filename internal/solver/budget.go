package solver

import (
	"sync"
	"sync/atomic"
	"time"
)

// budgetNow is the wall clock used to convert a caller-supplied
// Deadline into a monotonic duration when the budget arms. It is a
// package variable so tests can simulate NTP clock steps; the solve
// itself is metered purely against the monotonic clock and never
// consults budgetNow again after arming.
var budgetNow = time.Now

// Cancel is a goroutine-safe cancellation flag. Cancels chain: a
// Cancel created with a parent observes the parent's cancellation as
// its own, so a portfolio race can be stopped either by its local
// winner or by the pipeline-wide abort above it.
//
// The zero value is usable; a nil *Cancel never reports canceled.
type Cancel struct {
	flag   atomic.Bool
	parent *Cancel
}

// NewCancel returns a cancellation flag chained under parent (which
// may be nil).
func NewCancel(parent *Cancel) *Cancel { return &Cancel{parent: parent} }

// Cancel trips the flag. Safe for concurrent use; idempotent.
func (c *Cancel) Cancel() {
	if c != nil {
		c.flag.Store(true)
	}
}

// Canceled reports whether this flag or any ancestor has been tripped.
func (c *Cancel) Canceled() bool {
	for ; c != nil; c = c.parent {
		if c.flag.Load() {
			return true
		}
	}
	return false
}

// Budget meters solver work. Work units are abstract "steps": one SAT
// decision is 1, one conflict 50, one Tseitin gate 1, one node created
// during array elimination 1. A Budget with zero MaxSteps, zero
// Timeout, and zero Deadline is unlimited.
//
// The paper configures a 30-second solver timeout (§4); callers of
// this package express that timeout as a Timeout (or legacy Deadline),
// with MaxSteps as a determinism-friendly stand-in used throughout the
// test suite and benchmark harness.
//
// A Budget is safe to share across goroutines: racing portfolio
// workers metering against one shared budget account their steps with
// atomics, and Stop gives callers a prompt cancellation path that is
// observed on every spend rather than only at the deadline cadence.
type Budget struct {
	MaxSteps int64
	// Timeout bounds the solve to a monotonic duration measured from
	// the first spend. Preferred over Deadline: it is immune to wall
	// clock steps by construction.
	Timeout time.Duration
	// Deadline is the legacy wall-clock bound. It is converted to a
	// monotonic duration exactly once, when the budget arms on its
	// first spend; NTP steps after that point can neither extend nor
	// starve the solve. Ignored when Timeout is set.
	Deadline time.Time
	// Stop, when non-nil, is checked on every spend, so cancellation
	// lands within one solver step even when the deadline cadence
	// would not be reached for seconds.
	Stop *Cancel

	used      atomic.Int64
	lastCheck atomic.Int64
	checked   atomic.Bool
	exhausted atomic.Bool
	canceled  atomic.Bool

	armOnce sync.Once
	start   time.Time     // monotonic anchor captured at first spend
	limit   time.Duration // 0 = no time bound; <0 = expired at arm time
}

// deadlineCheckEvery is the step cadence between monotonic-clock
// checks after the first one. It is deliberately much smaller than the
// old 4096-step cadence: a Solve whose individual steps are expensive
// (small clause counts, heavy stages) accrues steps slowly, and with a
// coarse cadence could overrun Options.Timeout by an unbounded factor
// before the clock was ever consulted.
const deadlineCheckEvery = 256

// NewBudget returns a budget limited to maxSteps (0 = unlimited).
func NewBudget(maxSteps int64) *Budget { return &Budget{MaxSteps: maxSteps} }

// arm captures the monotonic start point and converts the wall-clock
// Deadline, if any, into a duration. Exactly one wall-clock read
// happens per Budget; everything after compares monotonic elapsed
// time against the armed limit.
func (b *Budget) arm() {
	b.armOnce.Do(func() {
		b.start = time.Now()
		switch {
		case b.Timeout > 0:
			b.limit = b.Timeout
		case !b.Deadline.IsZero():
			d := b.Deadline.Sub(budgetNow())
			if d <= 0 {
				d = -1 // sentinel: expired before the first spend
			}
			b.limit = d
		}
	})
}

// spend consumes n steps and reports whether the budget still holds.
// Cancellation is observed on every call; the clock is consulted on
// the very first spend and then on a bounded step cadence, so even
// tiny-step workloads observe an already-expired deadline immediately
// instead of running to completion unmetered.
func (b *Budget) spend(n int64) bool {
	if b == nil {
		return true
	}
	if b.Stop.Canceled() {
		b.canceled.Store(true)
		b.exhausted.Store(true)
		return false
	}
	if b.exhausted.Load() {
		return false
	}
	used := b.used.Add(n)
	if b.MaxSteps > 0 && used > b.MaxSteps {
		b.exhausted.Store(true)
		return false
	}
	b.arm()
	if b.limit == 0 {
		return true
	}
	if b.limit < 0 {
		b.exhausted.Store(true)
		return false
	}
	if !b.checked.Load() || used-b.lastCheck.Load() >= deadlineCheckEvery {
		b.checked.Store(true)
		b.lastCheck.Store(used)
		if time.Since(b.start) > b.limit {
			b.exhausted.Store(true)
			return false
		}
	}
	return true
}

// Used returns the steps consumed so far.
func (b *Budget) Used() int64 { return b.used.Load() }

// Exhausted reports whether the budget was exceeded (or canceled).
func (b *Budget) Exhausted() bool { return b.exhausted.Load() }

// Canceled reports whether the budget stopped because its Stop flag
// tripped, as opposed to running out of steps or time.
func (b *Budget) Canceled() bool { return b.canceled.Load() }
