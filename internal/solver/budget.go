package solver

import "time"

// Budget meters solver work. Work units are abstract "steps": one SAT
// decision is 1, one conflict 50, one Tseitin gate 1, one node created
// during array elimination 1. A Budget with zero MaxSteps and zero
// Deadline is unlimited.
//
// The paper configures a 30-second solver timeout (§4); callers of
// this package express that timeout as a Deadline, with MaxSteps as a
// determinism-friendly stand-in used throughout the test suite and
// benchmark harness.
type Budget struct {
	MaxSteps int64
	Deadline time.Time

	used      int64
	lastCheck int64
	checked   bool
	exhausted bool
}

// deadlineCheckEvery is the step cadence between wall-clock checks
// after the first one. It is deliberately much smaller than the old
// 4096-step cadence: a Solve whose individual steps are expensive
// (small clause counts, heavy stages) accrues steps slowly, and with a
// coarse cadence could overrun Options.Timeout by an unbounded factor
// before the clock was ever consulted.
const deadlineCheckEvery = 256

// NewBudget returns a budget limited to maxSteps (0 = unlimited).
func NewBudget(maxSteps int64) *Budget { return &Budget{MaxSteps: maxSteps} }

// spend consumes n steps and reports whether the budget still holds.
// The deadline is consulted on the very first spend and then on a
// bounded step cadence, so even tiny-step workloads observe an
// already-expired deadline immediately instead of running to
// completion unmetered.
func (b *Budget) spend(n int64) bool {
	if b == nil {
		return true
	}
	if b.exhausted {
		return false
	}
	b.used += n
	if b.MaxSteps > 0 && b.used > b.MaxSteps {
		b.exhausted = true
		return false
	}
	if !b.Deadline.IsZero() && (!b.checked || b.used-b.lastCheck >= deadlineCheckEvery) {
		b.checked = true
		b.lastCheck = b.used
		if time.Now().After(b.Deadline) {
			b.exhausted = true
			return false
		}
	}
	return true
}

// Used returns the steps consumed so far.
func (b *Budget) Used() int64 { return b.used }

// Exhausted reports whether the budget was exceeded.
func (b *Budget) Exhausted() bool { return b.exhausted }
