package solver

import (
	"sync"
	"testing"
	"time"

	"execrecon/internal/expr"
)

// TestBudgetSharedAccounting is the regression test for the shared-
// budget data race: spend used to mutate used/exhausted/lastCheck with
// plain loads and stores, so one budget metering K racing portfolio
// workers was a race (and could both lose steps and over-grant past
// MaxSteps). Run under -race, this test fails on the pre-fix code; the
// accounting assertions additionally pin exactness.
func TestBudgetSharedAccounting(t *testing.T) {
	const workers, per = 8, 10000

	// Unlimited budget: concurrent spends must account exactly.
	b := &Budget{}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.spend(1)
			}
		}()
	}
	wg.Wait()
	if got := b.Used(); got != workers*per {
		t.Errorf("shared budget accounted %d steps, want %d", got, workers*per)
	}

	// Bounded budget: exactly MaxSteps spends may be granted in total,
	// no matter how the workers interleave.
	const max = 5000
	b = NewBudget(max)
	granted := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if b.spend(1) {
					granted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, g := range granted {
		total += g
	}
	if total != max {
		t.Errorf("bounded shared budget granted %d steps, want exactly %d", total, max)
	}
	if !b.Exhausted() {
		t.Error("bounded budget not exhausted after over-subscription")
	}
}

// TestBudgetCancelPrompt checks the explicit cancellation flag: a
// tripped Cancel must deny the very next spend — not the next
// deadline-cadence check — and cancellation must chain through parent
// flags.
func TestBudgetCancelPrompt(t *testing.T) {
	parent := NewCancel(nil)
	child := NewCancel(parent)
	b := &Budget{Timeout: time.Hour, Stop: child}
	for i := 0; i < 10; i++ {
		if !b.spend(1) {
			t.Fatalf("spend %d denied before cancellation", i)
		}
	}
	parent.Cancel() // cancel the *parent*: must reach the child's budget
	if b.spend(1) {
		t.Fatal("spend granted immediately after cancellation")
	}
	if !b.Canceled() {
		t.Error("budget not marked canceled")
	}
	if !b.Exhausted() {
		t.Error("canceled budget not exhausted")
	}
	if !child.Canceled() {
		t.Error("child flag does not observe parent cancellation")
	}
}

// TestSolveCancelPrompt is the regression test for the slow-abort bug:
// cancellation used to be observed only via the deadline, at the
// 256-step check cadence and only when a Timeout was configured at
// all. With Options.Stop wired into every budget spend, canceling an
// in-flight solve of a hard factoring instance must return promptly
// even though the budget itself would allow minutes of work.
func TestSolveCancelPrompt(t *testing.T) {
	b := expr.NewBuilder()
	// Non-wrapping factoring: zero-extended 32-bit operands multiplied
	// in 64 bits against a semiprime of two 32-bit primes, so the only
	// models are the genuine integer factorizations. Two traps make
	// weaker instances flaky here: same-width modular multiplication
	// is NOT hard (x*y == c mod 2^w with odd c is satisfied by every
	// odd x), and factors with near-all-ones bit patterns like 2^32-5
	// align with the default decision polarity and propagate straight
	// to a model. With random-bit prime factors the search runs for
	// seconds — far past the cancel.
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	semiprime := uint64(0x9E3779B1) * uint64(0x85EBCA77) // both prime
	hard := []*expr.Expr{
		b.Eq(b.Mul(b.ZExt(x, 64), b.ZExt(y, 64)), b.Const(semiprime, 64)),
		b.Ult(b.Const(2, 32), x),
		b.Ult(b.Const(2, 32), y),
	}
	stop := NewCancel(nil)
	s := New(b, Options{Timeout: time.Minute, Stop: stop})
	type out struct {
		res Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, _, err := s.Solve(hard)
		done <- out{res, err}
	}()
	time.Sleep(10 * time.Millisecond)
	start := time.Now()
	stop.Cancel()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("solve: %v", o.err)
		}
		if o.res != ResultUnknown {
			t.Fatalf("canceled solve returned %v, want unknown", o.res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solve did not observe cancellation within 5s")
	}
	if lag := time.Since(start); lag > time.Second {
		t.Errorf("cancellation took %v to land, want prompt abort", lag)
	}
}

// TestBudgetMonotonicDeadline is the regression test for the wall-
// clock deadline bug: spend used to evaluate time.Now().After(
// Deadline) on every cadence check, so an NTP step after the solve
// started would starve it (forward step) or extend it indefinitely
// (backward step). The fix converts Deadline to a monotonic duration
// exactly once, at arm time, through the budgetNow seam — which this
// test uses to simulate clock steps, asserting the wall clock is never
// consulted after arming.
func TestBudgetMonotonicDeadline(t *testing.T) {
	defer func() { budgetNow = time.Now }()

	// A forward NTP step after the solve starts must not starve it.
	budgetNow = time.Now
	b := &Budget{Deadline: time.Now().Add(time.Hour)}
	if !b.spend(1) { // arms: one wall-clock read, then monotonic only
		t.Fatal("first spend denied under a 1h deadline")
	}
	calls := 0
	budgetNow = func() time.Time {
		calls++
		return time.Now().Add(48 * time.Hour) // simulated forward step
	}
	for i := 0; i < 4*deadlineCheckEvery; i++ {
		if !b.spend(1) {
			t.Fatal("forward wall-clock step starved an armed budget")
		}
	}
	if calls != 0 {
		t.Errorf("wall clock consulted %d times after arming, want 0", calls)
	}

	// A backward step must not extend the solve past its limit: the
	// armed monotonic duration governs regardless of the wall clock.
	budgetNow = func() time.Time { return time.Now().Add(-48 * time.Hour) }
	b = &Budget{Timeout: 2 * time.Millisecond}
	b.spend(1) // arm
	time.Sleep(10 * time.Millisecond)
	alive := 0
	for b.spend(1) {
		if alive++; alive > 2*deadlineCheckEvery {
			t.Fatal("backward wall-clock step extended an expired budget")
		}
	}
	if !b.Exhausted() {
		t.Error("expired budget not marked exhausted")
	}
}
