package solver

import (
	"fmt"
	"time"

	"execrecon/internal/absint"
	"execrecon/internal/expr"
	"execrecon/internal/telemetry"
)

// Incremental is a persistent solving session: where Solver re-runs
// array elimination, bit blasting, and CDCL from scratch on every
// call, an Incremental keeps all three stages' state alive across
// queries, so a call over a constraint set that is ~90% shared with
// the previous one (the shape of every query ER's reconstruction loop
// issues, within an iteration and across failure reoccurrences) pays
// only for the new ~10%. It is the solver-side analog of an inference
// stack's KV cache.
//
// The session works in four persistent layers:
//
//   - An owned expr.Builder into which every incoming constraint is
//     translated with Builder.Import, memoized by stable node IDs
//     (expr.StableID). The per-iteration Builder churn of the ER loop
//     therefore costs O(new nodes), not O(constraint set).
//   - A persistent array-elimination pass whose rewrite caches live as
//     long as the session and whose Ackermann functional-consistency
//     closure is emitted incrementally (arrayElim.consistencyDelta).
//     Consistency constraints are consequences of the array axioms, so
//     they are asserted into the SAT core permanently as lemmas.
//   - A persistent Tseitin blaster: each distinct constraint is lowered
//     to CNF exactly once per session, and its definitional clauses
//     stay in the core forever (they define fresh gate literals and are
//     valid regardless of which constraints a given query asserts).
//   - A persistent CDCL core queried through assumptions
//     (sat.solveAssume): the query's constraint literals are passed as
//     assumption decisions rather than clauses, so nothing a query
//     asserts ever needs retracting, the variable map survives, and
//     every learnt clause remains valid for all later queries.
//
// Because constraints enter the core only as assumptions, a query
// whose constraint set *shrinks* or *changes arbitrarily* (e.g.
// re-instrumentation concretized a symbolic value and the next
// iteration's path constraint replaced a symbolic term with an
// equality) needs no invalidation: the stale cached CNF simply goes
// unassumed. The remaining ways a cached result could be wrong —
// stable-ID hash collisions in the import memo, or an internal
// inconsistency — are caught by model validation (on by default), and
// any such query falls back to a fresh from-scratch Solve and poisons
// the session so the next query rebuilds it; FreshFallbacks counts
// those. Session memory is bounded by Options.MaxSessionNodes: when
// the owned builder outgrows it the session resets (Resets counts),
// trading cached work for bounded residency — which is also why fleet
// buckets can hold one session each and drop it on retirement.
//
// An Incremental is not safe for concurrent use; drive each session
// from a single goroutine (one pipeline = one session).
type Incremental struct {
	opts Options

	b    *expr.Builder
	elim *arrayElim
	core *sat
	bl   *blaster

	// pool holds the persistent portfolio replicas (lazily created on
	// the first escalation, dropped on reset — replicas mirror the
	// session core's variable numbering, which a rebuild invalidates).
	pool *replicaPool

	// pending holds Ackermann consistency lemmas emitted by the
	// elimination stage but not yet blasted+asserted (budget ran out
	// mid-flush); they are retried under the next query's budget.
	pending []*expr.Expr

	// absLemmas queues universal facts from the abstract pre-discharge
	// pass (internal/absint) awaiting permanent assertion; absSeen
	// dedups them by stable ID so a recurring subterm's bounds are
	// asserted once per session.
	absLemmas []*expr.Expr
	absSeen   map[uint64]bool

	poisoned bool

	// stop is the per-call cancellation flag installed by SolveStop
	// (nil for plain Solve calls, which fall back to Options.Stop).
	stop *Cancel

	last  Stats
	stats IncStats

	// met caches the session's telemetry counters (lazily resolved
	// from Options.Metrics; nil when telemetry is off).
	met *incMetrics
}

// incMetrics holds the registry series an Incremental session updates
// once per Solve, by delta. All sessions sharing one registry resolve
// the same series, so the er_solver_* counters are fleet-wide sums.
type incMetrics struct {
	sat, unsat, unknown *telemetry.Counter
	seen, reused        *telemetry.Counter
	blasted, lemmas     *telemetry.Counter
	fallbacks, resets   *telemetry.Counter
	steps               *telemetry.Counter
	seconds             *telemetry.Histogram

	// Portfolio racing (er_portfolio_*); nil-safe to leave unused.
	races                        *telemetry.Counter
	baseWins, seedWins, cubeWins *telemetry.Counter
	raceUnknowns                 *telemetry.Counter
	shared, importedCl           *telemetry.Counter

	// Abstract pre-discharge (er_absint_*).
	absDischarged, absLemmas, absFacts *telemetry.Counter
}

func newIncMetrics(reg *telemetry.Registry) *incMetrics {
	if reg == nil {
		return nil
	}
	return &incMetrics{
		sat:     reg.Counter("er_solver_solves_total", "incremental solver queries by verdict", telemetry.L("verdict", "sat")),
		unsat:   reg.Counter("er_solver_solves_total", "incremental solver queries by verdict", telemetry.L("verdict", "unsat")),
		unknown: reg.Counter("er_solver_solves_total", "incremental solver queries by verdict", telemetry.L("verdict", "unknown")),
		seen:    reg.Counter("er_solver_constraints_seen_total", "non-trivial top-level constraints across queries"),
		reused:  reg.Counter("er_solver_constraints_reused_total", "constraints answered from session CNF caches"),
		blasted: reg.Counter("er_solver_constraints_blasted_total", "constraints lowered to CNF for the first time"),
		lemmas:  reg.Counter("er_solver_lemmas_total", "Ackermann consistency lemmas asserted"),
		fallbacks: reg.Counter("er_solver_fresh_fallbacks_total",
			"queries answered by a from-scratch solve after validation failure"),
		resets:  reg.Counter("er_solver_session_resets_total", "session rebuilds (poisoning or node bound)"),
		steps:   reg.Counter("er_solver_steps_total", "abstract solver steps spent"),
		seconds: reg.Histogram("er_solver_query_seconds", "wall time per incremental solver query", nil),

		races:        reg.Counter("er_portfolio_races_total", "queries whose CDCL descent raced across seeded workers"),
		baseWins:     reg.Counter("er_portfolio_wins_total", "portfolio race wins by worker kind", telemetry.L("worker", "base")),
		seedWins:     reg.Counter("er_portfolio_wins_total", "portfolio race wins by worker kind", telemetry.L("worker", "seed")),
		cubeWins:     reg.Counter("er_portfolio_wins_total", "portfolio race wins by worker kind", telemetry.L("worker", "cube")),
		raceUnknowns: reg.Counter("er_portfolio_unknowns_total", "portfolio races where no worker finished"),
		shared:       reg.Counter("er_portfolio_clauses_shared_total", "learnt clauses published to the race exchange"),
		importedCl:   reg.Counter("er_portfolio_clauses_imported_total", "learnt clauses imported from other workers"),

		absDischarged: reg.Counter("er_absint_discharged_total", "queries decided by the abstract pre-discharge pass"),
		absLemmas:     reg.Counter("er_absint_lemmas_total", "universal absint lemmas asserted permanently"),
		absFacts:      reg.Counter("er_absint_facts_total", "query-refined absint facts passed as assumptions"),
	}
}

// report accumulates the query's deltas (pre-Solve stats vs current)
// into the shared registry.
func (inc *Incremental) report(before IncStats, res Result, err error, elapsed time.Duration) {
	m := inc.met
	if m == nil {
		return
	}
	switch {
	case err != nil || res == ResultUnknown:
		m.unknown.Inc()
	case res == ResultSat:
		m.sat.Inc()
	default:
		m.unsat.Inc()
	}
	st := inc.stats
	m.seen.Add(st.ConstraintsSeen - before.ConstraintsSeen)
	m.reused.Add(st.ConstraintsReused - before.ConstraintsReused)
	m.blasted.Add(st.ConstraintsBlasted - before.ConstraintsBlasted)
	m.lemmas.Add(st.LemmasAsserted - before.LemmasAsserted)
	m.fallbacks.Add(st.FreshFallbacks - before.FreshFallbacks)
	m.resets.Add(st.Resets - before.Resets)
	m.steps.Add(st.Steps - before.Steps)
	m.seconds.ObserveDuration(elapsed)
	m.races.Add(st.Portfolio.Races - before.Portfolio.Races)
	m.baseWins.Add(st.Portfolio.BaseWins - before.Portfolio.BaseWins)
	m.seedWins.Add(st.Portfolio.SeedWins - before.Portfolio.SeedWins)
	m.cubeWins.Add(st.Portfolio.CubeWins - before.Portfolio.CubeWins)
	m.raceUnknowns.Add(st.Portfolio.Unknowns - before.Portfolio.Unknowns)
	m.shared.Add(st.Portfolio.ClausesShared - before.Portfolio.ClausesShared)
	m.importedCl.Add(st.Portfolio.ClausesImported - before.Portfolio.ClausesImported)
	m.absDischarged.Add(st.AbsintDischarged - before.AbsintDischarged)
	m.absLemmas.Add(st.AbsintLemmas - before.AbsintLemmas)
	m.absFacts.Add(st.AbsintFacts - before.AbsintFacts)
}

// IncStats aggregates an Incremental session's lifetime counters —
// the cache/reuse picture surfaced in fleet.Snapshot and the
// solvecache experiment.
type IncStats struct {
	// Solves counts Solve calls; Sat/Unsat/Unknown their verdicts.
	Solves  int64
	Sat     int64
	Unsat   int64
	Unknown int64
	// ConstraintsSeen counts non-trivial top-level constraints across
	// all queries; ConstraintsReused the ones whose CNF was already
	// cached from an earlier query (no elimination or blasting work),
	// ConstraintsBlasted the ones lowered for the first time.
	ConstraintsSeen    int64
	ConstraintsReused  int64
	ConstraintsBlasted int64
	// ImportHits/ImportMisses are the stable-ID translation memo's
	// counters: hits are expression nodes recognized from earlier
	// queries (or earlier ER iterations), misses are newly imported.
	ImportHits   int64
	ImportMisses int64
	// LemmasAsserted counts Ackermann consistency constraints
	// permanently added to the core.
	LemmasAsserted int64
	// FreshFallbacks counts queries answered by a from-scratch Solve
	// because a cached result failed validation; Resets counts session
	// rebuilds (poisoning or MaxSessionNodes).
	FreshFallbacks int64
	Resets         int64
	// AbsintDischarged counts queries the abstract pre-discharge pass
	// decided without touching the CDCL core; AbsintLemmas universal
	// absint facts asserted permanently; AbsintFacts query-refined
	// facts passed as extra assumptions.
	AbsintDischarged int64
	AbsintLemmas     int64
	AbsintFacts      int64
	// FastSats counts queries answered by extending the previous
	// query's satisfying trail without search (the model-extension fast
	// path); TrailShrinks counts the subset of those that first had to
	// retract part of the held trail to flip assumptions the previous
	// model assigned the wrong way.
	FastSats     int64
	TrailShrinks int64
	// Steps/Elapsed accumulate solver work across all queries.
	Steps   int64
	Elapsed time.Duration
	// Nodes is the session builder's current interned-node count and
	// LearntClauses the CDCL core's current learnt database size —
	// the session's resident "cache size".
	Nodes         int
	LearntClauses int
	// Portfolio aggregates racing-search outcomes when the session was
	// built with Options.Portfolio.Workers > 1.
	Portfolio PortfolioStats
}

// DefaultMaxSessionNodes bounds a session's interned expression nodes
// before it resets (Options.MaxSessionNodes zero value).
const DefaultMaxSessionNodes = 1 << 20

// NewIncremental returns an empty session with the given per-query
// options (MaxSteps/Timeout/Validate apply to each Solve call).
func NewIncremental(opts Options) *Incremental {
	inc := &Incremental{opts: opts}
	inc.reset()
	inc.stats.Resets = 0 // the initial build is not a reset
	return inc
}

// reset discards all session state: builder, caches, CNF, and learnt
// clauses. The next Solve rebuilds from scratch.
func (inc *Incremental) reset() {
	if inc.core != nil {
		// The fast-path counters live on the CDCL core; carry them
		// across the rebuild so Stats stays cumulative.
		inc.stats.FastSats += inc.core.fastSats
		inc.stats.TrailShrinks += inc.core.trailShrinks
	}
	inc.b = expr.NewBuilder()
	inc.elim = newArrayElim(inc.b, nil)
	inc.core = newSAT(nil)
	inc.bl = newBlaster(inc.core, nil)
	inc.pool = nil
	inc.pending = nil
	// Queued and already-asserted absint lemmas die with the old
	// builder and core; the seen-set must go too, or the rebuilt core
	// would never regain them.
	inc.absLemmas = nil
	inc.absSeen = nil
	inc.poisoned = false
	inc.stats.Resets++
}

// Reset drops every cached stage result and learnt clause, returning
// the session to its freshly constructed state. Callers use it when
// they know the workload changed wholesale; Solve also invokes it on
// poisoning and when the session outgrows Options.MaxSessionNodes.
func (inc *Incremental) Reset() { inc.reset() }

// LastStats returns statistics for the most recent Solve call, in the
// same shape as Solver.LastStats. SATVars/SATClauses report the
// session core's totals; the CDCL counters are per-call deltas.
func (inc *Incremental) LastStats() Stats { return inc.last }

// Stats returns the session's cumulative counters.
func (inc *Incremental) Stats() IncStats {
	s := inc.stats
	s.ImportHits, s.ImportMisses = inc.b.ImportStats()
	s.Nodes = inc.b.NumNodes()
	s.LearntClauses = len(inc.core.learnts)
	s.FastSats += inc.core.fastSats
	s.TrailShrinks += inc.core.trailShrinks
	return s
}

// maxNodes returns the session-size bound.
func (inc *Incremental) maxNodes() int {
	if inc.opts.MaxSessionNodes > 0 {
		return inc.opts.MaxSessionNodes
	}
	return DefaultMaxSessionNodes
}

// attach points every persistent stage at the current query's budget
// and clears sticky budget errors left by an exhausted earlier query.
func (inc *Incremental) attach(budget *Budget) {
	inc.elim.budget = budget
	inc.bl.budget = budget
	inc.core.budget = budget
	inc.elim.clearBudgetErr()
	inc.bl.clearBudgetErr()
}

// Solve decides the conjunction of cs, reusing every stage result the
// session has cached from earlier queries. The verdict contract is
// identical to Solver.Solve: on ResultSat the returned assignment
// satisfies every constraint (validated when Options.Validate is set),
// ResultUnsat means the conjunction is unsatisfiable, ResultUnknown
// that the per-query budget or deadline ran out.
func (inc *Incremental) Solve(cs []*expr.Expr) (Result, *expr.Assignment, error) {
	start := time.Now()
	stop := inc.stop
	if stop == nil {
		stop = inc.opts.Stop
	}
	budget := &Budget{MaxSteps: inc.opts.MaxSteps, Timeout: inc.opts.Timeout, Stop: stop}
	if inc.met == nil && inc.opts.Metrics != nil {
		inc.met = newIncMetrics(inc.opts.Metrics)
	}
	before := inc.stats
	inc.stats.Solves++
	if inc.poisoned || inc.b.NumNodes() > inc.maxNodes() {
		inc.reset()
	}
	inc.attach(budget)
	inc.last = Stats{}
	prop0, conf0, dec0 := inc.core.propagations, inc.core.conflicts, inc.core.decisions

	res, asn, err := inc.solveQuery(cs)

	inc.last.Steps += budget.Used()
	inc.last.Elapsed = time.Since(start)
	inc.last.SATVars = inc.core.numVars
	inc.last.SATClauses = len(inc.core.clauses)
	inc.last.Propagations = inc.core.propagations - prop0
	inc.last.Conflicts = inc.core.conflicts - conf0
	inc.last.Decisions = inc.core.decisions - dec0
	inc.stats.Steps += budget.Used()
	inc.stats.Elapsed += inc.last.Elapsed
	switch {
	case err != nil || res == ResultUnknown:
		inc.stats.Unknown++
	case res == ResultSat:
		inc.stats.Sat++
	default:
		inc.stats.Unsat++
	}
	inc.report(before, res, err, inc.last.Elapsed)
	return res, asn, err
}

// SolveStop is Solve with a per-call cancellation flag that overrides
// Options.Stop for the duration of the call. Callers needing both —
// e.g. a speculative pre-solve that must die on pipeline abort and on
// its own discard — chain them with NewCancel(parent). The session
// itself stays single-goroutine; only the flag may be tripped from
// other goroutines.
func (inc *Incremental) SolveStop(cs []*expr.Expr, stop *Cancel) (Result, *expr.Assignment, error) {
	inc.stop = stop
	defer func() { inc.stop = nil }()
	return inc.Solve(cs)
}

// solveQuery is the budget-attached body of Solve.
func (inc *Incremental) solveQuery(cs []*expr.Expr) (Result, *expr.Assignment, error) {
	// Import into the session builder (memoized by stable IDs) and
	// fast-path trivially decided constraints.
	imported := make([]*expr.Expr, 0, len(cs))
	for _, c := range cs {
		ic := inc.b.Import(c)
		if ic.IsTrue() {
			continue
		}
		if ic.IsFalse() {
			return ResultUnsat, nil, nil
		}
		if !ic.IsBool() {
			return ResultUnknown, nil, fmt.Errorf("solver: non-boolean constraint %s", ic.Kind)
		}
		imported = append(imported, ic)
	}
	if len(imported) == 0 {
		return ResultSat, expr.NewAssignment(), nil
	}

	// Stage 0: abstract pre-discharge (interval + known-bits domains
	// over the imported constraints). Unsat is proven by
	// over-approximation, Sat is concretely validated inside
	// AnalyzeQuery. Undecided queries contribute universal lemmas
	// (asserted permanently below — they hold for every assignment)
	// and query-refined facts (assumed only for this query: the
	// session's cached variable literals must stay free, so bits are
	// never pinned here, unlike the one-shot blaster).
	var absFacts []*expr.Expr
	if inc.opts.Absint {
		aq := absint.AnalyzeQuery(inc.b, imported, absint.QueryOptions{WantModel: true, WantLemmas: true})
		switch aq.Verdict {
		case absint.VerdictUnsat:
			inc.stats.AbsintDischarged++
			inc.last.AbsintDischarged = true
			return ResultUnsat, nil, nil
		case absint.VerdictSat:
			inc.stats.AbsintDischarged++
			inc.last.AbsintDischarged = true
			return ResultSat, aq.Model, nil
		}
		if inc.absSeen == nil {
			inc.absSeen = make(map[uint64]bool)
		}
		for _, l := range aq.Lemmas {
			if inc.absSeen[l.StableID()] {
				continue
			}
			inc.absSeen[l.StableID()] = true
			inc.absLemmas = append(inc.absLemmas, l)
		}
		absFacts = varFactExprs(inc.b, imported, aq.Vars, maxAssumedFacts)
		inc.stats.AbsintFacts += int64(len(absFacts))
	}

	// Stage 1: array elimination, cached across queries.
	pure := make([]*expr.Expr, 0, len(imported))
	for _, ic := range imported {
		p := inc.elim.rewrite(ic)
		if inc.elim.err == errBudget {
			return ResultUnknown, nil, nil
		}
		if inc.elim.err != nil {
			return inc.freshFallback(imported, inc.elim.err)
		}
		pure = append(pure, p)
	}
	// New Ackermann consistency lemmas go to the pending queue first,
	// so a budget failure between emission and assertion cannot lose
	// them.
	lemmas, lemErr := inc.elim.consistencyDelta()
	inc.pending = append(inc.pending, lemmas...)
	if lemErr == errBudget {
		return ResultUnknown, nil, nil
	}

	// Absint universal lemmas join the permanent queue through the
	// same array-elimination rewrite as everything else. Their select
	// subterms are shared with the constraints, so no new read terms
	// (hence no missed consistency axioms) can appear here.
	for len(inc.absLemmas) > 0 {
		p := inc.elim.rewrite(inc.absLemmas[0])
		if inc.elim.err == errBudget {
			return ResultUnknown, nil, nil
		}
		if inc.elim.err != nil {
			return inc.freshFallback(imported, inc.elim.err)
		}
		inc.absLemmas = inc.absLemmas[1:]
		if p.IsTrue() {
			continue
		}
		inc.pending = append(inc.pending, p)
		inc.stats.AbsintLemmas++
	}

	// Stage 2a: assert pending lemmas permanently (they are valid
	// consequences of the array axioms, independent of any query).
	for len(inc.pending) > 0 {
		l, ok := inc.bl.boolLit(inc.pending[0])
		if !ok {
			if inc.bl.err == errBudget {
				return ResultUnknown, nil, nil
			}
			return inc.freshFallback(imported, inc.bl.err)
		}
		if !inc.core.addClause([]lit{l}) {
			// A valid lemma can never make the database unsat; if it
			// did, the cache is inconsistent.
			return inc.freshFallback(imported, fmt.Errorf("solver: lemma contradicts session database"))
		}
		inc.pending = inc.pending[1:]
		inc.stats.LemmasAsserted++
	}

	// Stage 2b: lower the query's constraints, reusing cached CNF, and
	// collect their literals as CDCL assumptions.
	assumps := make([]lit, 0, len(pure))
	for _, p := range pure {
		if p.IsTrue() {
			continue
		}
		if p.IsFalse() {
			return ResultUnsat, nil, nil
		}
		inc.stats.ConstraintsSeen++
		if inc.bl.cached(p) {
			inc.stats.ConstraintsReused++
		} else {
			inc.stats.ConstraintsBlasted++
		}
		l, ok := inc.bl.boolLit(p)
		if !ok {
			if inc.bl.err == errBudget {
				return ResultUnknown, nil, nil
			}
			return inc.freshFallback(imported, inc.bl.err)
		}
		assumps = append(assumps, l)
	}
	// Query-refined absint facts ride along as extra assumptions:
	// implied by the constraint set, so verdict-preserving, but they
	// hand the CDCL core unit-propagatable bounds up front.
	for _, fe := range absFacts {
		l, ok := inc.bl.boolLit(fe)
		if !ok {
			if inc.bl.err == errBudget {
				return ResultUnknown, nil, nil
			}
			return inc.freshFallback(imported, inc.bl.err)
		}
		assumps = append(assumps, l)
	}

	// Stage 3: CDCL under assumptions, learnt clauses persisting. With
	// a portfolio configured a budget-bound descent escalates to a race
	// across seeded clones of the session core (the fast path never
	// races: a held trail that extends is cheaper than any parallel
	// search, and neither do queries the deterministic search answers
	// in budget). The winner core holds the model — usually the session
	// core itself; after a clone win the session simply pays a fresh
	// descent on its next query.
	winner := inc.core
	if inc.opts.Portfolio.Workers > 1 {
		sres, done := inc.core.fastSolve(assumps)
		if !done {
			if inc.pool == nil {
				inc.pool = &replicaPool{}
			}
			sres, winner = raceSearch(inc.core, inc.pool, assumps, inc.opts.Portfolio, &inc.stats.Portfolio)
		}
		switch sres {
		case satUnsat:
			return ResultUnsat, nil, nil
		case satUnknown:
			return ResultUnknown, nil, nil
		}
	} else {
		switch inc.core.solveAssume(assumps) {
		case satUnsat:
			return ResultUnsat, nil, nil
		case satUnknown:
			return ResultUnknown, nil, nil
		}
	}

	// Stage 4: model extraction and validation. The model covers every
	// variable the session ever saw; stale entries are harmless (the
	// caller looks names up) and current-query entries are checked
	// below.
	asn, err := extractModelFrom(inc.bl, inc.elim, winner)
	if err != nil {
		return inc.freshFallback(imported, err)
	}
	if inc.opts.Validate {
		ok, err := asn.Satisfies(imported)
		if err != nil || !ok {
			// A cached assumption was invalidated (or the import memo
			// collided): answer this query from scratch and rebuild
			// the session before the next one.
			return inc.freshFallback(imported, err)
		}
	}
	return ResultSat, asn, nil
}

// maxAssumedFacts caps query-refined absint facts passed as extra
// assumptions: beyond this the assumption-literal overhead outweighs
// the propagation head start.
const maxAssumedFacts = 16

// varFactExprs renders the query-refined per-variable facts as boolean
// expressions over b: upper/lower interval bounds and known-bit
// patterns for each variable of cs, capped at maxN.
func varFactExprs(b *expr.Builder, cs []*expr.Expr, facts map[string]absint.Val, maxN int) []*expr.Expr {
	if len(facts) == 0 {
		return nil
	}
	var out []*expr.Expr
	seen := make(map[string]bool)
	for _, c := range cs {
		for _, v := range expr.VarsOf(c) {
			if v.Kind != expr.KVar || seen[v.Name] {
				continue
			}
			seen[v.Name] = true
			f, ok := facts[v.Name]
			if !ok || f.IsBottom() {
				continue
			}
			w := v.Width
			m := ^uint64(0)
			if w < 64 {
				m = 1<<w - 1
			}
			if f.Hi < m && len(out) < maxN {
				out = append(out, b.Ule(v, b.Const(f.Hi, w)))
			}
			if f.Lo > 0 && len(out) < maxN {
				out = append(out, b.Ule(b.Const(f.Lo, w), v))
			}
			if km := f.Mask & m; km != 0 && len(out) < maxN {
				out = append(out, b.Eq(b.And(v, b.Const(km, w)), b.Const(f.Bits&m, w)))
			}
			if len(out) >= maxN {
				return out
			}
		}
	}
	return out
}

// freshFallback answers the query with a from-scratch Solver over the
// session builder and poisons the session so the next query rebuilds
// it. It is the safety net for invalidated cache state; the
// differential property tests exist to show it (all but) never fires.
func (inc *Incremental) freshFallback(imported []*expr.Expr, cause error) (Result, *expr.Assignment, error) {
	inc.stats.FreshFallbacks++
	inc.poisoned = true
	_ = cause // retained for debuggability; the fresh verdict stands on its own
	fresh := New(inc.b, inc.opts)
	res, asn, err := fresh.Solve(imported)
	// Attribute the fresh solve's work to this query.
	fs := fresh.LastStats()
	inc.last.Steps += fs.Steps
	inc.stats.Steps += fs.Steps
	return res, asn, err
}
