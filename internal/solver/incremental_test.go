package solver

import (
	"math/rand"
	"testing"
	"time"

	"execrecon/internal/expr"
)

// TestBudgetDeadlineStarvation is the regression test for the
// deadline-starvation bug: the old implementation consulted the
// wall clock only every 4096 steps, so a workload whose individual
// steps are expensive (few but heavy spends) could overrun the
// deadline by an unbounded factor — and a budget created with an
// already-expired deadline would happily grant thousands of steps.
func TestBudgetDeadlineStarvation(t *testing.T) {
	// An already-expired deadline must deny the very first spend.
	b := &Budget{Deadline: time.Now().Add(-time.Second)}
	if b.spend(1) {
		t.Fatal("expired deadline granted the first spend")
	}
	if !b.Exhausted() {
		t.Error("budget not marked exhausted")
	}

	// A deadline expiring mid-run must be observed within the check
	// cadence even when every spend is tiny.
	b = &Budget{Deadline: time.Now().Add(2 * time.Millisecond)}
	granted := 0
	deadline := time.Now().Add(2 * time.Second) // test watchdog
	for b.spend(1) {
		granted++
		if time.Now().After(deadline) {
			t.Fatal("budget never observed the expired deadline")
		}
	}
	// After expiry at most one check-cadence worth of steps may slip
	// through before the clock is consulted again.
	t.Logf("granted %d tiny spends before deadline stop", granted)

	// Steps-only budgets are unaffected by the deadline machinery.
	b = NewBudget(10)
	for i := 0; i < 10; i++ {
		if !b.spend(1) {
			t.Fatalf("spend %d denied under budget", i)
		}
	}
	if b.spend(1) {
		t.Error("spend beyond MaxSteps granted")
	}
}

// TestStatsPopulatedOnEarlyExit is the regression test for the Stats
// under-report bug: budget-exhausted ResultUnknown returns — exactly
// the solves ER's stall detection keys off — used to report zero
// steps, elapsed time, and SAT counters because stats were recorded
// only on the happy path.
func TestStatsPopulatedOnEarlyExit(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	hard := []*expr.Expr{
		b.Eq(b.Mul(x, y), b.Const(0xdeadbeef, 32)),
		b.Ult(b.Const(2, 32), x),
		b.Ult(b.Const(2, 32), y),
	}
	s := New(b, Options{MaxSteps: 50}) // far too little to finish
	res, _, err := s.Solve(hard)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res != ResultUnknown {
		t.Fatalf("result %v, want unknown under a 50-step budget", res)
	}
	st := s.LastStats()
	if st.Steps == 0 {
		t.Error("Steps not populated on budget-exhausted exit")
	}
	if st.Elapsed == 0 {
		t.Error("Elapsed not populated on budget-exhausted exit")
	}
}

// TestIncrementalReuseCounters checks the session's cache accounting:
// a repeated query must answer from cached CNF (reuse, fast-sat) and
// a growing query must only blast its new constraints.
func TestIncrementalReuseCounters(t *testing.T) {
	cb := expr.NewBuilder() // caller-side builder, distinct from the session's
	x := cb.Var("x", 32)
	y := cb.Var("y", 32)
	c1 := cb.Eq(cb.Add(x, y), cb.Const(100, 32))
	c2 := cb.Ult(x, cb.Const(30, 32))
	c3 := cb.Ult(cb.Const(25, 32), x)

	inc := NewIncremental(Options{Validate: true})
	res, asn, err := inc.Solve([]*expr.Expr{c1, c2})
	if err != nil || res != ResultSat {
		t.Fatalf("q1: res=%v err=%v", res, err)
	}
	if asn.Vars["x"]+asn.Vars["y"] != 100 {
		t.Fatalf("q1 model: %v", asn.Vars)
	}
	st := inc.Stats()
	if st.ConstraintsBlasted == 0 || st.ConstraintsReused != 0 {
		t.Fatalf("q1 counters: %+v", st)
	}

	// Same query again: full reuse, answered by the model fast path.
	res, _, err = inc.Solve([]*expr.Expr{c1, c2})
	if err != nil || res != ResultSat {
		t.Fatalf("q2: res=%v err=%v", res, err)
	}
	st = inc.Stats()
	if st.ConstraintsReused < 2 {
		t.Errorf("q2: reused=%d, want >=2", st.ConstraintsReused)
	}
	if st.FastSats == 0 {
		t.Errorf("q2: repeated sat query did not take the model-extension fast path")
	}

	// Grown query: only the new constraint is blasted.
	blastedBefore := st.ConstraintsBlasted
	res, asn, err = inc.Solve([]*expr.Expr{c1, c2, c3})
	if err != nil || res != ResultSat {
		t.Fatalf("q3: res=%v err=%v", res, err)
	}
	xv, yv := asn.Vars["x"], asn.Vars["y"]
	if xv+yv != 100 || xv >= 30 || xv <= 25 {
		t.Fatalf("q3 model x=%d y=%d", xv, yv)
	}
	st = inc.Stats()
	if st.ConstraintsBlasted != blastedBefore+1 {
		t.Errorf("q3: blasted %d -> %d, want exactly one new", blastedBefore, st.ConstraintsBlasted)
	}

	// Shrunk/contradicted query: cached assumptions simply go unassumed.
	res, _, err = inc.Solve([]*expr.Expr{c2, cb.Ult(cb.Const(40, 32), x)})
	if err != nil || res != ResultUnsat {
		t.Fatalf("q4: res=%v err=%v, want unsat", res, err)
	}
	st = inc.Stats()
	if st.FreshFallbacks != 0 {
		t.Errorf("fresh fallbacks fired: %+v", st)
	}
	if st.Solves != 4 || st.Sat != 3 || st.Unsat != 1 {
		t.Errorf("verdict counters: %+v", st)
	}
}

// TestIncrementalSessionReset checks the MaxSessionNodes bound: a
// session that outgrows it rebuilds (dropping caches) but keeps
// cumulative counters and stays correct.
func TestIncrementalSessionReset(t *testing.T) {
	cb := expr.NewBuilder()
	x := cb.Var("x", 32)
	inc := NewIncremental(Options{Validate: true, MaxSessionNodes: 8})
	for i := 0; i < 8; i++ {
		// x + k == 2k+5 ⇒ x = k+5: satisfiable, with fresh nodes per query.
		k := uint64(i)
		c := cb.Eq(cb.Add(x, cb.Const(k, 32)), cb.Const(2*k+5, 32))
		res, asn, err := inc.Solve([]*expr.Expr{c})
		if err != nil || res != ResultSat {
			t.Fatalf("q%d: res=%v err=%v", i, res, err)
		}
		if asn.Vars["x"] != k+5 {
			t.Fatalf("q%d: x=%d want %d", i, asn.Vars["x"], k+5)
		}
	}
	st := inc.Stats()
	if st.Resets == 0 {
		t.Errorf("8-node session never reset: %+v", st)
	}
	if st.Solves != 8 || st.Sat != 8 {
		t.Errorf("counters lost across resets: %+v", st)
	}
}

// TestIncrementalDifferential is the differential property test: a
// randomized sequence of queries — additions, removals, and outright
// contradictions, over bitvector and array constraints — must produce
// exactly the verdicts of a fresh from-scratch Solve, and every sat
// model must independently satisfy the query. Runs under -race in CI.
func TestIncrementalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 12; trial++ {
		cb := expr.NewBuilder()
		const w = 12
		vars := []*expr.Expr{cb.Var("a", w), cb.Var("b", w), cb.Var("c", w)}
		arr := cb.ArrayVar("m", w, w)
		witness := expr.NewAssignment()
		for _, v := range vars {
			witness.Vars[v.Name] = uint64(rng.Intn(1 << w))
		}

		var gen func(depth int) *expr.Expr
		gen = func(depth int) *expr.Expr {
			if depth == 0 || rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					return vars[rng.Intn(len(vars))]
				}
				return cb.Const(uint64(rng.Intn(1<<w)), w)
			}
			x, y := gen(depth-1), gen(depth-1)
			switch rng.Intn(8) {
			case 0:
				return cb.Add(x, y)
			case 1:
				return cb.Sub(x, y)
			case 2:
				return cb.And(x, y)
			case 3:
				return cb.Or(x, y)
			case 4:
				return cb.Xor(x, y)
			case 5:
				return cb.Ite(cb.Ult(x, y), x, y)
			case 6:
				return cb.Mul(x, cb.Const(uint64(rng.Intn(8)), w))
			default:
				return cb.Not(x)
			}
		}

		// Constraint pool: satisfiable-by-construction bitvector
		// equalities, array reads at constant and symbolic indices
		// (exercising store-chain lowering and Ackermannization), and a
		// pair of mutually contradictory constraints.
		var pool []*expr.Expr
		for k := 0; k < 5; k++ {
			e := gen(3)
			pool = append(pool, cb.Eq(e, cb.Const(witness.MustEval(e), w)))
		}
		st := cb.Store(cb.Store(arr, cb.Const(3, w), vars[0]), vars[1], cb.Const(7, w))
		pool = append(pool,
			cb.Eq(cb.Select(st, vars[1]), cb.Const(7, w)),
			cb.Ule(cb.Select(arr, cb.Const(9, w)), cb.Const(1<<w-1, w)),
			cb.Eq(cb.Select(arr, vars[2]), cb.Select(arr, vars[2])),
		)
		contr := []*expr.Expr{
			cb.Eq(vars[0], cb.Const(witness.Vars["a"], w)),
			cb.Eq(vars[0], cb.Const(witness.Vars["a"]^1, w)),
		}

		inc := NewIncremental(Options{Validate: true})
		for q := 0; q < 14; q++ {
			var cs []*expr.Expr
			for _, c := range pool {
				if rng.Intn(2) == 0 {
					cs = append(cs, c)
				}
			}
			if rng.Intn(4) == 0 { // sometimes force unsat
				cs = append(cs, contr...)
			}

			fresh := New(cb, DefaultOptions())
			fres, _, ferr := fresh.Solve(cs)
			if ferr != nil {
				t.Fatalf("trial %d q%d: fresh: %v", trial, q, ferr)
			}
			ires, iasn, ierr := inc.Solve(cs)
			if ierr != nil {
				t.Fatalf("trial %d q%d: incremental: %v", trial, q, ierr)
			}
			if fres != ires {
				t.Fatalf("trial %d q%d: verdicts diverge: fresh=%v incremental=%v", trial, q, fres, ires)
			}
			if ires == ResultSat {
				ok, err := iasn.Satisfies(cs)
				if err != nil || !ok {
					t.Fatalf("trial %d q%d: incremental model invalid (err %v)", trial, q, err)
				}
			}
		}
		if st := inc.Stats(); st.FreshFallbacks != 0 {
			t.Errorf("trial %d: session needed %d fresh fallbacks", trial, st.FreshFallbacks)
		}
	}
}
