// Portfolio CDCL: the search phase of one query, escalated to K
// diversified racing workers when the deterministic search gives up.
// The base worker is the caller's own core running its usual
// deterministic search (seed 0) solo — queries it answers within its
// limits never pay a cent of racing overhead. Only when that search
// exhausts its budget does the portfolio escalate: a pool of
// persistent replica cores — each with a distinct restart cadence and
// a sprinkle of random decisions and phases (sat.setSeed), plus
// optional cube splits — races the query with fresh budget
// allowances. Replicas live as long as the session and are caught up
// incrementally before each race (only the clauses and root facts the
// base added since the last escalation), so the cost of replicating a
// grown session CNF is paid once, not per stall. Workers share short
// learnt clauses through a bounded exchange and stop as soon as any
// reaches a definitive verdict.
//
// Soundness: every replica's clause database holds only consequences
// of the base CNF — its problem clauses and root facts (copied during
// catch-up), its own learnt clauses, and exchange imports (learnt by
// siblings over the same consequences) — and CDCL is sound and
// complete, so any definitive answer is *the* answer regardless of
// which seed found it: racing changes latency, never verdicts. Parity
// with the sequential solve is structural — phase one IS the
// sequential solve, and escalation only ever converts its budget-bound
// Unknowns into definitive verdicts when a lucky seed (or a cube)
// finishes within limits the deterministic search exhausts. That
// conversion is the speedup mechanism on the stall-heavy apps: a
// converted stall saves the whole reoccurrence round-trip it would
// otherwise have forced.
package solver

import (
	"sync"

	"execrecon/internal/expr"
)

// PortfolioOptions configures the racing-search layer: K seeded CDCL
// workers (plus optional cube-and-conquer splits) race the same query,
// sharing learnt clauses through a bounded exchange; the first
// definitive verdict wins and cancels the rest.
type PortfolioOptions struct {
	// Workers is the number of racing searches, including the
	// deterministic base worker (seed 0). Values <= 1 disable racing.
	Workers int
	// Seeds overrides the diversification seeds for workers 1..K-1.
	// When shorter than Workers-1 the remaining workers derive seeds
	// from their index. Seed 0 is reserved for the base worker.
	Seeds []uint64
	// ExchangeMaxLen bounds the length of learnt clauses admitted to
	// the shared exchange (0 = DefaultExchangeMaxLen). Short clauses
	// prune the most and cost the least to import.
	ExchangeMaxLen int
	// ExchangeCap bounds how many clauses the exchange retains
	// (0 = DefaultExchangeCap); beyond it, publishing stops.
	ExchangeCap int
	// CubeVars, when > 0, additionally splits the search space into
	// 2^CubeVars cubes over the highest-occurrence undecided
	// variables, one extra worker per cube. All cubes returning unsat
	// proves unsat; any cube returning sat wins.
	CubeVars int
	// CubeMinClauses gates cube splitting to grown queries: cubes are
	// only raced when the CNF holds at least this many problem
	// clauses (0 = DefaultCubeMinClauses).
	CubeMinClauses int
}

// Defaults for the learned-clause exchange and cube gating.
const (
	DefaultExchangeMaxLen = 8
	DefaultExchangeCap    = 4096
	DefaultCubeMinClauses = 64
)

// PortfolioStats counts racing outcomes across a solver's lifetime.
type PortfolioStats struct {
	// Races counts queries that entered the portfolio search layer
	// (fast paths and trivial queries never do); Escalations the subset
	// whose deterministic phase stalled and actually spawned racing
	// clones.
	Races       int64
	Escalations int64
	// BaseWins/SeedWins/CubeWins attribute definitive verdicts to the
	// worker kind that produced them (a base win is the deterministic
	// search finishing without escalating); Unknowns counts searches no
	// worker finished within its limits.
	BaseWins int64
	SeedWins int64
	CubeWins int64
	Unknowns int64
	// ClausesShared/ClausesImported count exchange traffic.
	ClausesShared   int64
	ClausesImported int64
	// CubeSplits counts cube workers launched; ExtraSteps the
	// abstract work spent by non-base workers (the base worker's
	// steps are in the ordinary Stats/IncStats counters).
	CubeSplits int64
	ExtraSteps int64
}

// Merge accumulates o into s — cross-session aggregation (fleet
// snapshots sum per-bucket stats with it).
func (s *PortfolioStats) Merge(o PortfolioStats) {
	s.Races += o.Races
	s.Escalations += o.Escalations
	s.BaseWins += o.BaseWins
	s.SeedWins += o.SeedWins
	s.CubeWins += o.CubeWins
	s.Unknowns += o.Unknowns
	s.ClausesShared += o.ClausesShared
	s.ClausesImported += o.ClausesImported
	s.CubeSplits += o.CubeSplits
	s.ExtraSteps += o.ExtraSteps
}

// xclause is one entry in the exchange: the publishing worker's id
// (so drains skip a worker's own clauses) and an owned literal slice.
type xclause struct {
	from int
	lits []lit
}

// clauseExchange is the bounded learnt-clause pool shared by the
// workers of one race. Publishing copies the literals immediately —
// watch maintenance reorders a live clause's slice in place — and
// draining hands each importer its own copy. A nil exchange (solo
// search) is a no-op on both sides.
type clauseExchange struct {
	mu       sync.Mutex
	maxLen   int
	capLimit int
	pool     []xclause
	imported int64
}

func newClauseExchange(opts PortfolioOptions) *clauseExchange {
	maxLen := opts.ExchangeMaxLen
	if maxLen <= 0 {
		maxLen = DefaultExchangeMaxLen
	}
	capLimit := opts.ExchangeCap
	if capLimit <= 0 {
		capLimit = DefaultExchangeCap
	}
	return &clauseExchange{maxLen: maxLen, capLimit: capLimit}
}

func (x *clauseExchange) publish(from int, lits []lit) {
	if x == nil || len(lits) == 0 || len(lits) > x.maxLen {
		return
	}
	x.mu.Lock()
	if len(x.pool) < x.capLimit {
		x.pool = append(x.pool, xclause{from: from, lits: append([]lit(nil), lits...)})
	}
	x.mu.Unlock()
}

// drain returns copies of every clause published since *cursor by a
// worker other than self, advancing the cursor.
func (x *clauseExchange) drain(self int, cursor *int) [][]lit {
	if x == nil {
		return nil
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	var out [][]lit
	for ; *cursor < len(x.pool); *cursor++ {
		c := x.pool[*cursor]
		if c.from == self {
			continue
		}
		out = append(out, append([]lit(nil), c.lits...))
		x.imported++
	}
	return out
}

// Worker kinds for win attribution.
const (
	workerBase = iota
	workerSeed
	workerCube
)

// seedFor picks the diversification seed for worker i >= 1.
func seedFor(opts PortfolioOptions, i int) uint64 {
	if i-1 < len(opts.Seeds) && opts.Seeds[i-1] != 0 {
		return opts.Seeds[i-1]
	}
	return uint64(i)*0x9E3779B9 + 1
}

// cubeLits picks the cube variables — the highest-occurrence variables
// undecided at the base's root and not already fixed by the
// assumptions — and returns one literal tuple per cube (all 2^n sign
// combinations). It only reads the base core; call it while the base
// is idle.
func cubeLits(base *sat, assumps []lit, n int) [][]lit {
	if n <= 0 {
		return nil
	}
	units := base.rootFacts()
	fixed := make(map[int]bool, len(units)+len(assumps))
	for _, l := range units {
		fixed[l.vindex()] = true
	}
	for _, l := range assumps {
		fixed[l.vindex()] = true
	}
	occ := make([]int, base.numVars)
	for _, cl := range base.clauses {
		for _, l := range cl.lits {
			occ[l.vindex()]++
		}
	}
	var vars []int
	for picked := 0; picked < n; picked++ {
		best, bestOcc := -1, 0
		for v := 1; v < base.numVars; v++ {
			if !fixed[v] && occ[v] > bestOcc {
				best, bestOcc = v, occ[v]
			}
		}
		if best < 0 {
			break
		}
		fixed[best] = true
		vars = append(vars, best)
	}
	if len(vars) == 0 {
		return nil
	}
	cubes := make([][]lit, 0, 1<<uint(len(vars)))
	for mask := 0; mask < 1<<uint(len(vars)); mask++ {
		cube := make([]lit, len(vars))
		for i, v := range vars {
			cube[i] = mkLit(v, mask>>uint(i)&1 == 1)
		}
		cubes = append(cubes, cube)
	}
	return cubes
}

// mirrorBudget builds a fresh budget with the same limits as the
// base's — each worker meters the full per-query allowance, so the
// base worker replicates the sequential solve exactly and clones can
// only add answers, never steal the base's budget — all chained to the
// race's cancellation flag.
func mirrorBudget(base *Budget, stop *Cancel) *Budget {
	if base == nil {
		return &Budget{Stop: stop}
	}
	return &Budget{MaxSteps: base.MaxSteps, Timeout: base.Timeout, Deadline: base.Deadline, Stop: stop}
}

// replica is one persistent portfolio worker: a seeded core kept
// alive across a session's escalations, plus cursors marking how much
// of the base core's clause database and root-fact trail it has
// already replicated. Catch-up before each race copies only the
// suffix past the cursors, so replicating a grown session CNF is an
// amortized cost instead of a per-stall rebuild.
type replica struct {
	core     *sat
	nclauses int // base problem clauses already copied
	nunits   int // base root-fact trail prefix already copied
}

func newReplica(seed uint64) *replica {
	s := newSAT(nil)
	s.setSeed(seed)
	return &replica{core: s}
}

// catchUp brings the replica's clause database up to date with the
// base core — new variables, root facts, and problem clauses added
// since the last race. It reads the base but never writes it, so the
// race's workers may all catch up concurrently while the base sits
// idle. The base's learnt clauses are not copied: replicas accumulate
// their own learnts (and exchange imports) across races, which serve
// the same pruning role without a cursor over a shrinking slice.
//
// A false return means the replica hit a root-level contradiction.
// Because its database holds only consequences of the base CNF, that
// is a sound unsatisfiability verdict for the query itself, not just
// for this worker.
func (r *replica) catchUp(base *sat) bool {
	s := r.core
	if s.failed {
		return false
	}
	// Retract a model held from winning an earlier race: values on a
	// decision trail are hypotheses, and the level-0 install path below
	// must only ever see root facts.
	s.dropTrail()
	for s.numVars < base.numVars {
		v := s.newVar()
		s.polarity[v] = base.polarity[v]
	}
	units := base.rootFacts()
	for _, u := range units[r.nunits:] {
		if s.value(u) == tFalse {
			s.failed = true
			return false
		}
		if s.value(u) == tUndef {
			s.uncheckedEnqueue(u, nil)
		}
	}
	r.nunits = len(units)
	if s.propagate() != nil {
		s.failed = true
		return false
	}
	for _, c := range base.clauses[r.nclauses:] {
		// addClauseAtZero compacts its argument in place; the replica
		// needs its own copy of the base's literals.
		if !s.addClauseAtZero(append([]lit(nil), c.lits...)) {
			return false
		}
	}
	r.nclauses = len(base.clauses)
	return true
}

// replicaPool holds a session's persistent racing replicas, created
// lazily on the first escalation and kept until the session resets
// (a rebuild renumbers variables, which invalidates every cursor).
type replicaPool struct {
	seeds []*replica // diversified full-space workers 1..K-1
	cubes []*replica // one worker per cube split
}

// ensure grows the pool to the configured worker count plus the cube
// workers this race needs. Replicas keep their seed for life, so a
// given worker index diversifies the same way in every race.
func (p *replicaPool) ensure(opts PortfolioOptions, ncubes int) {
	for len(p.seeds) < opts.Workers-1 {
		p.seeds = append(p.seeds, newReplica(seedFor(opts, len(p.seeds)+1)))
	}
	for len(p.cubes) < ncubes {
		p.cubes = append(p.cubes, newReplica(seedFor(opts, opts.Workers+len(p.cubes))))
	}
}

// raceSearch runs searchAssume on the base core and, if — and only if
// — that deterministic search exhausts its limits, escalates to a
// race across the pool's replicas (caught up to the stalled CNF) and
// cube splits. The caller must already have tried the fast path
// (fastSolve); the base core's held trail, if any, has been dropped.
// On satSat the returned core holds the model — the base itself when
// the sequential phase answered, a replica otherwise (in which case
// the base's trail is gone and the next incremental query pays a
// fresh descent; that is the documented cost of an escalation win).
//
// The sequential phase running solo is what keeps the portfolio's
// overhead off the common path: replica catch-up costs real time on
// grown session CNFs, and paying anything per query would dwarf the
// per-query search times; a stall, by contrast, is about to cost the
// reconstruction an entire reoccurrence wait, so spending a race on
// it is always a good trade.
//
// All workers are joined before returning: no goroutine touches the
// exchange, any budget, or any replica after raceSearch returns, and
// none ever writes the base core.
func raceSearch(base *sat, pool *replicaPool, assumps []lit, opts PortfolioOptions, stats *PortfolioStats) (satResult, *sat) {
	if opts.Workers <= 1 {
		return base.searchAssume(assumps), base
	}

	stats.Races++
	// Phase one: the unmodified sequential search under the caller's
	// own budget. Definitive answers (and cancellations) end here.
	res := base.searchAssume(assumps)
	if res != satUnknown {
		stats.BaseWins++
		return res, base
	}
	if base.budget != nil && base.budget.Stop != nil && base.budget.Stop.Canceled() {
		stats.Unknowns++
		return satUnknown, base
	}

	// Phase two: the deterministic search is budget-bound — escalate.
	// The base is idle from here until every worker is joined, so the
	// workers' concurrent catch-up reads are safe.
	exch := newClauseExchange(opts)

	var parent *Cancel
	if base.budget != nil {
		parent = base.budget.Stop
	}
	raceStop := NewCancel(parent)

	var cubes [][]lit
	minClauses := opts.CubeMinClauses
	if minClauses <= 0 {
		minClauses = DefaultCubeMinClauses
	}
	if opts.CubeVars > 0 && len(base.clauses) >= minClauses {
		cubes = cubeLits(base, assumps, opts.CubeVars)
	}
	pool.ensure(opts, len(cubes))

	type outcome struct {
		kind int
		res  satResult
		core *sat
	}
	total := opts.Workers - 1 + len(cubes)
	results := make(chan outcome, total)

	// Catch-up is the bulk of an escalation's fixed cost on first race
	// (the whole session CNF) and near-free afterwards; each worker
	// catches its replica up inside its own goroutine so the copies
	// overlap. A cancellation landing mid-catch-up (another worker
	// already won) is observed by the replica's budget during its
	// first descent.
	launch := func(rc *replica, id, kind int, as []lit) {
		go func() {
			rc.core.budget = mirrorBudget(base.budget, raceStop)
			rc.core.exchange, rc.core.exchangeID, rc.core.exchangeCursor = exch, id, 0
			if !rc.catchUp(base) {
				// Root contradiction among base-CNF consequences: a
				// global unsat verdict whatever the worker's kind, so
				// report it as a full-space answer.
				results <- outcome{workerSeed, satUnsat, rc.core}
				return
			}
			results <- outcome{kind, rc.core.searchAssume(as), rc.core}
		}()
	}
	for i, rc := range pool.seeds {
		launch(rc, i+1, workerSeed, assumps)
	}
	for ci, cube := range cubes {
		cubeAssumps := append(append(make([]lit, 0, len(assumps)+len(cube)), assumps...), cube...)
		launch(pool.cubes[ci], opts.Workers+ci, workerCube, cubeAssumps)
	}

	stats.Escalations++
	stats.CubeSplits += int64(len(cubes))
	res, winKind := satUnknown, -1
	winner := base
	cubesUnsat := 0
	for done := 0; done < total; done++ {
		o := <-results
		if o.core.budget != nil {
			stats.ExtraSteps += o.core.budget.Used()
		}
		if winKind >= 0 {
			continue // already decided; draining for the join
		}
		decide := func(r satResult, w *sat, kind int) {
			res, winner, winKind = r, w, kind
			raceStop.Cancel()
		}
		switch {
		case o.kind == workerSeed && o.res != satUnknown:
			decide(o.res, o.core, workerSeed)
		case o.kind == workerCube && o.res == satSat:
			decide(satSat, o.core, workerCube)
		case o.kind == workerCube && o.res == satUnsat:
			// One cube refuted; all of them refuted proves unsat (the
			// cubes enumerate every sign combination, so they cover the
			// whole space).
			if cubesUnsat++; cubesUnsat == len(cubes) {
				decide(satUnsat, base, workerCube)
			}
		}
	}
	switch {
	case winKind == workerSeed:
		stats.SeedWins++
	case winKind == workerCube:
		stats.CubeWins++
	default:
		stats.Unknowns++
	}
	exch.mu.Lock()
	stats.ClausesShared += int64(len(exch.pool))
	stats.ClausesImported += exch.imported
	exch.mu.Unlock()
	return res, winner
}

// Portfolio is a one-shot Backend that races every query's search
// phase across seeded workers. It is Solver with PortfolioOptions
// pre-wired — array elimination and bit blasting run once; only the
// CDCL descent is raced.
type Portfolio struct {
	*Solver
}

// NewPortfolio returns a racing one-shot solver over builder b.
func NewPortfolio(b *expr.Builder, opts Options, popts PortfolioOptions) *Portfolio {
	opts.Portfolio = popts
	return &Portfolio{Solver: New(b, opts)}
}
