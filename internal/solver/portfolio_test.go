package solver

import (
	"math/rand"
	"testing"

	"execrecon/internal/expr"
)

// genSystem builds a random constraint system over three 12-bit
// variables. With a witness it is satisfiable by construction; the
// unsat variants additionally pin a variable to two different values.
func genSystem(rng *rand.Rand, unsat bool) (*expr.Builder, []*expr.Expr) {
	b := expr.NewBuilder()
	const w = 12
	vars := []*expr.Expr{b.Var("a", w), b.Var("b", w), b.Var("c", w)}
	witness := expr.NewAssignment()
	for _, v := range vars {
		witness.Vars[v.Name] = uint64(rng.Intn(1 << w))
	}
	var gen func(depth int) *expr.Expr
	gen = func(depth int) *expr.Expr {
		if depth == 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				return vars[rng.Intn(len(vars))]
			}
			return b.Const(uint64(rng.Intn(1<<w)), w)
		}
		x, y := gen(depth-1), gen(depth-1)
		switch rng.Intn(8) {
		case 0:
			return b.Add(x, y)
		case 1:
			return b.Sub(x, y)
		case 2:
			return b.And(x, y)
		case 3:
			return b.Or(x, y)
		case 4:
			return b.Xor(x, y)
		case 5:
			return b.Mul(x, b.Const(uint64(rng.Intn(8)), w))
		case 6:
			return b.Ite(b.Ult(x, y), x, y)
		default:
			return b.Not(x)
		}
	}
	var cs []*expr.Expr
	for k := 0; k < 4; k++ {
		e := gen(3)
		cs = append(cs, b.Eq(e, b.Const(witness.MustEval(e), w)))
	}
	if unsat {
		v := vars[rng.Intn(len(vars))]
		pin := witness.Vars[v.Name]
		cs = append(cs,
			b.Eq(v, b.Const(pin, w)),
			b.Eq(v, b.Const(pin^1, w)))
	}
	return b, cs
}

// TestPortfolioDifferential races K ∈ {2,4,8} seeded workers (with
// cube splitting forced on) against the sequential one-shot solver on
// randomized systems: verdicts must match exactly, and both models —
// which may legitimately differ — must satisfy the constraints.
func TestPortfolioDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for _, workers := range []int{2, 4, 8} {
		for trial := 0; trial < 12; trial++ {
			unsat := trial%3 == 2
			b, cs := genSystem(rng, unsat)

			seq := New(b, DefaultOptions())
			sres, smodel, err := seq.Solve(cs)
			if err != nil {
				t.Fatalf("K=%d trial %d: sequential: %v", workers, trial, err)
			}

			port := NewPortfolio(b, DefaultOptions(), PortfolioOptions{
				Workers:        workers,
				CubeVars:       2,
				CubeMinClauses: 1, // force the cube path on small CNFs
			})
			pres, pmodel, err := port.Solve(cs)
			if err != nil {
				t.Fatalf("K=%d trial %d: portfolio: %v", workers, trial, err)
			}
			if pres != sres {
				t.Fatalf("K=%d trial %d: verdict diverged: sequential %v, portfolio %v",
					workers, trial, sres, pres)
			}
			if sres == ResultSat {
				for name, m := range map[string]*expr.Assignment{"sequential": smodel, "portfolio": pmodel} {
					ok, err := m.Satisfies(cs)
					if err != nil || !ok {
						t.Fatalf("K=%d trial %d: %s model invalid (err %v)", workers, trial, name, err)
					}
				}
			}
			if want := ResultUnsat; unsat && pres != want {
				t.Fatalf("K=%d trial %d: unsat-by-construction decided %v", workers, trial, pres)
			}
		}
	}
}

// TestPortfolioIncrementalDifferential drives two incremental sessions
// — one sequential, one racing — through the same growing query
// sequence (the shape of ER's reconstruction queries: mostly extend,
// occasionally contradict) and checks verdict parity at every step.
func TestPortfolioIncrementalDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, workers := range []int{2, 4} {
		cb := expr.NewBuilder()
		const w = 16
		x := cb.Var("x", w)
		y := cb.Var("y", w)

		seq := NewIncremental(Options{Validate: true})
		port := NewIncremental(Options{Validate: true, Portfolio: PortfolioOptions{Workers: workers}})

		var cs []*expr.Expr
		cs = append(cs, cb.Eq(cb.Add(x, y), cb.Const(500, w)))
		for step := 0; step < 12; step++ {
			query := cs
			if step%4 == 3 {
				// A contradicting side constraint (not retained):
				// x < 100 ∧ x > 60000 on top of the base system.
				query = append(append([]*expr.Expr{}, cs...),
					cb.Ult(x, cb.Const(100, w)),
					cb.Ult(cb.Const(60000, w), x))
			} else {
				cs = append(cs, cb.Ult(x, cb.Const(uint64(400-step*20), w)))
				query = cs
			}
			sres, smodel, err := seq.Solve(query)
			if err != nil {
				t.Fatalf("K=%d step %d: sequential: %v", workers, step, err)
			}
			pres, pmodel, err := port.Solve(query)
			if err != nil {
				t.Fatalf("K=%d step %d: portfolio: %v", workers, step, err)
			}
			if pres != sres {
				t.Fatalf("K=%d step %d: verdict diverged: sequential %v, portfolio %v",
					workers, step, sres, pres)
			}
			if sres == ResultSat {
				for name, m := range map[string]*expr.Assignment{"seq": smodel, "port": pmodel} {
					ok, err := m.Satisfies(query)
					if err != nil || !ok {
						t.Fatalf("K=%d step %d: %s model invalid (err %v)", workers, step, name, err)
					}
				}
			}
			_ = rng
		}
		if st := port.Stats(); st.Portfolio.Races == 0 {
			t.Errorf("K=%d: racing session never raced (fast path should not cover every query)", workers)
		}
	}
}

// TestPortfolioSeededDeterminism pins the seed-0 contract: a worker
// seeded 0 is the unmodified deterministic search, and distinct seeds
// configure distinct restart cadences.
func TestPortfolioSeededDeterminism(t *testing.T) {
	s := newSAT(nil)
	if s.restartBase != defaultRestartBase || s.randDecPm != 0 || s.randPhasePm != 0 {
		t.Fatalf("fresh core not at deterministic defaults: base=%d dec=%d phase=%d",
			s.restartBase, s.randDecPm, s.randPhasePm)
	}
	s.setSeed(3)
	if s.randDecPm == 0 || s.randPhasePm == 0 {
		t.Error("seeded core has no decision/phase noise configured")
	}
	s.setSeed(0)
	if s.restartBase != defaultRestartBase || s.randDecPm != 0 || s.randPhasePm != 0 || s.rng != 0 {
		t.Error("seed 0 did not restore the deterministic search")
	}
}
