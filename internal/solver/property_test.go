package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"execrecon/internal/expr"
)

// TestCircuitAgreesWithEvaluator cross-validates every bit-blasting
// circuit against the expression evaluator: for random concrete
// operand values, the constraint "op(x, y) == evaluator-result" must
// be satisfiable with x and y pinned, and the negation unsatisfiable.
func TestCircuitAgreesWithEvaluator(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type mk func(b *expr.Builder, x, y *expr.Expr) *expr.Expr
	ops := map[string]mk{
		"add":  func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Add(x, y) },
		"sub":  func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Sub(x, y) },
		"mul":  func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Mul(x, y) },
		"udiv": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.UDiv(x, y) },
		"urem": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.URem(x, y) },
		"sdiv": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.SDiv(x, y) },
		"srem": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.SRem(x, y) },
		"and":  func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.And(x, y) },
		"or":   func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Or(x, y) },
		"xor":  func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Xor(x, y) },
		"shl":  func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Shl(x, y) },
		"lshr": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.LShr(x, y) },
		"ashr": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.AShr(x, y) },
	}
	cmps := map[string]mk{
		"eq":  func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Eq(x, y) },
		"ult": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Ult(x, y) },
		"ule": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Ule(x, y) },
		"slt": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Slt(x, y) },
		"sle": func(b *expr.Builder, x, y *expr.Expr) *expr.Expr { return b.Sle(x, y) },
	}
	widths := []uint{8, 16}
	interesting := []uint64{0, 1, 2, 0x7f, 0x80, 0xff, 0x7fff, 0x8000, 0xffff}
	pick := func(w uint) uint64 {
		if rng.Intn(2) == 0 {
			return expr.Truncate(interesting[rng.Intn(len(interesting))], w)
		}
		return expr.Truncate(rng.Uint64(), w)
	}
	for name, op := range ops {
		for _, w := range widths {
			for trial := 0; trial < 6; trial++ {
				xv, yv := pick(w), pick(w)
				if (name == "shl" || name == "lshr" || name == "ashr") && trial%2 == 0 {
					yv = uint64(rng.Intn(int(w) + 4)) // exercise in/over-range shifts
				}
				b := expr.NewBuilder()
				x, y := b.Var("x", w), b.Var("y", w)
				e := op(b, x, y)
				asn := expr.NewAssignment()
				asn.Vars["x"], asn.Vars["y"] = xv, yv
				want := asn.MustEval(e)
				pin := []*expr.Expr{b.Eq(x, b.Const(xv, w)), b.Eq(y, b.Const(yv, w))}
				s := New(b, DefaultOptions())
				res, _, err := s.Solve(append(pin, b.Eq(e, b.Const(want, w))))
				if err != nil || res != ResultSat {
					t.Fatalf("%s w=%d x=%#x y=%#x: circuit disagrees (want %#x): %v %v",
						name, w, xv, yv, want, res, err)
				}
				res, _, err = s.Solve(append(pin, b.Ne(e, b.Const(want, w))))
				if err != nil || res != ResultUnsat {
					t.Fatalf("%s w=%d x=%#x y=%#x: negation satisfiable (want only %#x): %v %v",
						name, w, xv, yv, want, res, err)
				}
			}
		}
	}
	for name, op := range cmps {
		for trial := 0; trial < 8; trial++ {
			w := widths[trial%2]
			xv, yv := pick(w), pick(w)
			b := expr.NewBuilder()
			x, y := b.Var("x", w), b.Var("y", w)
			e := op(b, x, y)
			asn := expr.NewAssignment()
			asn.Vars["x"], asn.Vars["y"] = xv, yv
			want := asn.MustEval(e)
			pin := []*expr.Expr{b.Eq(x, b.Const(xv, w)), b.Eq(y, b.Const(yv, w))}
			goal := e
			if want == 0 {
				goal = b.BoolNot(e)
			}
			s := New(b, DefaultOptions())
			res, _, err := s.Solve(append(pin, goal))
			if err != nil || res != ResultSat {
				t.Fatalf("%s w=%d x=%#x y=%#x: comparison circuit disagrees: %v %v",
					name, w, xv, yv, res, err)
			}
		}
	}
}

// TestRandomExpressionRoundTrip builds random expression trees with a
// hidden witness; the solver must find some model, and that model
// must satisfy the constraints under independent evaluation.
func TestRandomExpressionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 25; trial++ {
		b := expr.NewBuilder()
		const w = 12
		vars := []*expr.Expr{b.Var("a", w), b.Var("b", w), b.Var("c", w)}
		witness := expr.NewAssignment()
		for _, v := range vars {
			witness.Vars[v.Name] = uint64(rng.Intn(1 << w))
		}
		var gen func(depth int) *expr.Expr
		gen = func(depth int) *expr.Expr {
			if depth == 0 || rng.Intn(3) == 0 {
				if rng.Intn(2) == 0 {
					return vars[rng.Intn(len(vars))]
				}
				return b.Const(uint64(rng.Intn(1<<w)), w)
			}
			x, y := gen(depth-1), gen(depth-1)
			switch rng.Intn(9) {
			case 0:
				return b.Add(x, y)
			case 1:
				return b.Sub(x, y)
			case 2:
				return b.And(x, y)
			case 3:
				return b.Or(x, y)
			case 4:
				return b.Xor(x, y)
			case 5:
				return b.Mul(x, b.Const(uint64(rng.Intn(8)), w))
			case 6:
				return b.Ite(b.Ult(x, y), x, y)
			case 7:
				return b.URem(x, b.Const(uint64(rng.Intn(30)+1), w))
			default:
				return b.Not(x)
			}
		}
		var cs []*expr.Expr
		for k := 0; k < 3; k++ {
			e := gen(3)
			cs = append(cs, b.Eq(e, b.Const(witness.MustEval(e), w)))
		}
		s := New(b, DefaultOptions())
		res, model, err := s.Solve(cs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res != ResultSat {
			t.Fatalf("trial %d: %v on satisfiable-by-construction system", trial, res)
		}
		ok, err := model.Satisfies(cs)
		if err != nil || !ok {
			t.Fatalf("trial %d: model invalid (err %v)", trial, err)
		}
	}
}

// TestStoreChainCostGrowth verifies the stall mechanism: solver work
// grows steeply with symbolic write chain length (§3.3.1 source 1).
func TestStoreChainCostGrowth(t *testing.T) {
	cost := func(n int) int64 {
		b := expr.NewBuilder()
		arr := b.ConstArray(b.Const(0, 8), 32)
		for i := 0; i < n; i++ {
			arr = b.Store(arr, b.Var(fmt.Sprintf("i%d", i), 32), b.Const(uint64(i), 8))
		}
		sel := b.Select(arr, b.Var("j", 32))
		s := New(b, Options{})
		res, _, err := s.Solve([]*expr.Expr{b.Eq(sel, b.Const(1, 8))})
		if err != nil || res != ResultSat {
			t.Fatalf("n=%d: %v %v", n, res, err)
		}
		return s.LastStats().Steps
	}
	small, large := cost(2), cost(24)
	if large < small*4 {
		t.Errorf("chain cost growth too flat: %d -> %d steps", small, large)
	}
}
