// Package solver implements the constraint solver used by shepherded
// symbolic execution. It is an SMT-lite solver for quantifier-free
// bitvector and array constraints, in the style of STP: array terms
// are eliminated first (store chains become if-then-else ladders and
// reads from free arrays are Ackermannized), then the resulting pure
// bitvector formula is bit-blasted through a Tseitin transformation to
// CNF and decided by a CDCL SAT solver.
//
// The solver meters its own work (array-elimination nodes, gates,
// propagations, conflicts) against a step budget and a wall-clock
// deadline. Exceeding either yields ResultUnknown — the solver
// "timeout" that ER's stall detection is built on (§4). Crucially, the
// metered cost grows with the two constraint-complexity sources the
// paper identifies (§3.3.1): the length of symbolic write chains and
// the size of the accessed symbolic memory objects. Stalls therefore
// arise here for the paper's stated reasons rather than by fiat.
package solver

// lit is a SAT literal: variable index shifted left once, with the
// low bit set for negated literals. Variable 0 is unused.
type lit uint32

func mkLit(v int, neg bool) lit {
	l := lit(v) << 1
	if neg {
		l |= 1
	}
	return l
}

func (l lit) vindex() int { return int(l >> 1) }
func (l lit) sign() bool  { return l&1 == 1 }
func (l lit) negate() lit { return l ^ 1 }

const litUndef lit = 0

// tribool is an assignment value.
type tribool int8

const (
	tUndef tribool = iota
	tTrue
	tFalse
)

func (t tribool) negate() tribool {
	switch t {
	case tTrue:
		return tFalse
	case tFalse:
		return tTrue
	}
	return tUndef
}

// clause is a disjunction of literals. Learnt clauses carry an
// activity for deletion policies (kept simple here: we bound the
// learnt database and periodically drop inactive clauses).
type clause struct {
	lits   []lit
	learnt bool
	act    float64
}

// sat is a CDCL SAT solver with two-watched-literal propagation,
// first-UIP learning, VSIDS-style variable activities, and Luby
// restarts.
type sat struct {
	clauses []*clause
	learnts []*clause
	watches [][]*clause // indexed by lit

	assigns  []tribool // indexed by var
	level    []int
	reason   []*clause
	activity []float64
	polarity []bool // phase saving
	varInc   float64

	trail    []lit
	trailLim []int
	qhead    int

	heap    []int // binary max-heap of vars by activity
	heapPos []int // var -> heap index, -1 if absent

	seen []bool

	numVars      int
	failed       bool
	propagations int64
	conflicts    int64
	decisions    int64

	// Incremental trail reuse (solveAssume). modelHeld marks that the
	// trail is a complete satisfying assignment left in place by the
	// previous call; the next call tries to extend or minimally shrink
	// it (extendModel) instead of re-searching from scratch — the
	// queries an ER reconstruction issues mostly extend the previous
	// one, so the held model usually survives.
	modelHeld bool
	// fastSats counts queries answered by extendModel; trailShrinks
	// those of them that first had to retract part of the held trail.
	fastSats     int64
	trailShrinks int64

	// Diversification for portfolio racing (setSeed). Seed 0 keeps
	// the solver exactly as deterministic as it has always been; a
	// non-zero seed mixes rare random decisions and phase flips into
	// the search and varies the restart interval, so K workers on the
	// same CNF explore different parts of the space.
	seed        uint64
	rng         uint64 // xorshift64 state; never zero once seeded
	randDecPm   uint64 // per-mille chance a decision picks a random var
	randPhasePm uint64 // per-mille chance a decision gets a random phase
	restartBase int64  // Luby restart unit (conflicts)

	// exchange, when non-nil, shares short learnt clauses between the
	// racing workers of one portfolio query (see clauseExchange).
	exchange       *clauseExchange
	exchangeID     int
	exchangeCursor int

	budget *Budget
}

// defaultRestartBase is the Luby restart unit the solver has always
// used; seeded portfolio workers vary it per seed.
const defaultRestartBase = 64

func newSAT(budget *Budget) *sat {
	s := &sat{varInc: 1, budget: budget, restartBase: defaultRestartBase}
	s.newVar() // var 0 placeholder
	return s
}

// setSeed installs the diversification seed. Seed 0 restores the
// fully deterministic default search; distinct non-zero seeds give
// distinct restart cadences, decision noise, and phase noise.
func (s *sat) setSeed(seed uint64) {
	s.seed = seed
	if seed == 0 {
		s.rng, s.randDecPm, s.randPhasePm = 0, 0, 0
		s.restartBase = defaultRestartBase
		return
	}
	s.rng = seed*0x9E3779B97F4A7C15 | 1 // splitmix-style spread, never zero
	s.randDecPm = 20
	s.randPhasePm = 10
	bases := [...]int64{32, 64, 128, 256}
	s.restartBase = bases[seed%uint64(len(bases))]
}

// nextRand is xorshift64 — tiny, deterministic per seed, and fast
// enough to sit on the decision path.
func (s *sat) nextRand() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

func (s *sat) newVar() int {
	v := s.numVars
	s.numVars++
	s.assigns = append(s.assigns, tUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.polarity = append(s.polarity, false)
	s.watches = append(s.watches, nil, nil)
	s.seen = append(s.seen, false)
	s.heapPos = append(s.heapPos, -1)
	if v != 0 {
		s.heapInsert(v)
	}
	return v
}

func (s *sat) value(l lit) tribool {
	v := s.assigns[l.vindex()]
	if l.sign() {
		return v.negate()
	}
	return v
}

// addClause installs a problem clause; it returns false if the clause
// system is trivially unsatisfiable. It may be called at any decision
// level: while a trail is held between incremental queries, clauses
// that cannot be attached safely under the current partial assignment
// first backtrack to level 0 (see addClauseDynamic).
func (s *sat) addClause(lits []lit) bool {
	if s.decisionLevel() > 0 {
		return s.addClauseDynamic(lits)
	}
	return s.addClauseAtZero(lits)
}

// addClauseAtZero is the classic level-0 install path.
func (s *sat) addClauseAtZero(lits []lit) bool {
	// Remove duplicate and false literals; detect tautologies and
	// satisfied clauses at level 0. A false return marks the solver
	// permanently failed (unsatisfiable at level 0). Duplicate
	// detection is a linear scan over the kept prefix — clauses here
	// are Tseitin-sized (2-3 literals), and the map this used to
	// allocate per clause dominated blasting time.
	out := lits[:0]
outerZero:
	for _, l := range lits {
		for _, o := range out {
			if o == l {
				continue outerZero
			}
			if o == l.negate() {
				return true // tautology
			}
		}
		switch s.value(l) {
		case tTrue:
			if s.level[l.vindex()] == 0 {
				return true
			}
		case tFalse:
			if s.level[l.vindex()] == 0 {
				continue
			}
		}
		out = append(out, l)
	}
	lits = out
	switch len(lits) {
	case 0:
		s.failed = true
		return false
	case 1:
		if s.value(lits[0]) == tFalse {
			s.failed = true
			return false
		}
		if s.value(lits[0]) == tUndef {
			s.uncheckedEnqueue(lits[0], nil)
		}
		if s.propagate() != nil {
			s.failed = true
			return false
		}
		return true
	}
	c := &clause{lits: append([]lit(nil), lits...)}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

// addClauseDynamic attaches a clause while a partial (or complete)
// trail from a previous incremental query is still in place, avoiding
// the full backtrack-to-zero that would force the next query to
// re-propagate the whole database. Safety argument:
//
//   - ≥2 literals non-false under the current assignment: watch two of
//     them. A watch falsified later flows through propagate as usual; a
//     watch false *before* attach never needs an event because the
//     other watch is non-false, and if it too is falsified later the
//     examination sees the clause as unit/conflicting then.
//   - exactly 1 non-false literal: the clause is unit under the held
//     trail. Watch the non-false literal plus the deepest false one and
//     enqueue the implication at the current level with the clause as
//     reason (a "late implication", at a higher level than strictly
//     necessary — sound for CDCL, merely less precise for backjumps).
//   - 0 non-false literals, or a unit clause: these must live at level
//     0 to survive later backtracks, so fall back to a full backtrack
//     plus the classic install path. This invalidates any held trail,
//     which solveAssume detects via the decision level.
func (s *sat) addClauseDynamic(lits []lit) bool {
	// Level-0 simplification only (higher-level assignments are
	// transient and must not erase literals). Duplicate detection is a
	// linear scan over the kept prefix, as in addClauseAtZero.
	out := make([]lit, 0, len(lits))
outerDyn:
	for _, l := range lits {
		for _, o := range out {
			if o == l {
				continue outerDyn
			}
			if o == l.negate() {
				return true // tautology
			}
		}
		switch s.value(l) {
		case tTrue:
			if s.level[l.vindex()] == 0 {
				return true
			}
		case tFalse:
			if s.level[l.vindex()] == 0 {
				continue
			}
		}
		out = append(out, l)
	}
	// Partition: non-false literals first.
	nf := 0
	for i, l := range out {
		if s.value(l) != tFalse {
			out[i], out[nf] = out[nf], out[i]
			nf++
		}
	}
	if len(out) < 2 || nf == 0 {
		s.modelHeld = false
		s.backtrackTo(0)
		return s.addClauseAtZero(out)
	}
	if nf == 1 {
		// Unit under the held trail: watch out[0] plus the deepest
		// falsified literal.
		maxI := 1
		for i := 2; i < len(out); i++ {
			if s.level[out[i].vindex()] > s.level[out[maxI].vindex()] {
				maxI = i
			}
		}
		out[1], out[maxI] = out[maxI], out[1]
		c := &clause{lits: out}
		s.clauses = append(s.clauses, c)
		s.watchClause(c)
		if s.value(out[0]) == tUndef {
			s.uncheckedEnqueue(out[0], c)
		}
		return true
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

func (s *sat) watchClause(c *clause) {
	s.watches[c.lits[0].negate()] = append(s.watches[c.lits[0].negate()], c)
	s.watches[c.lits[1].negate()] = append(s.watches[c.lits[1].negate()], c)
}

func (s *sat) uncheckedEnqueue(l lit, from *clause) {
	v := l.vindex()
	if l.sign() {
		s.assigns[v] = tFalse
	} else {
		s.assigns[v] = tTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *sat) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns the conflicting
// clause or nil.
func (s *sat) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.propagations++
		ws := s.watches[p]
		kept := ws[:0]
		var conflict *clause
		for wi := 0; wi < len(ws); wi++ {
			c := ws[wi]
			if conflict != nil {
				kept = append(kept, c)
				continue
			}
			// Ensure the false literal is lits[1].
			if c.lits[0] == p.negate() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Clause already satisfied by lits[0]?
			if s.value(c.lits[0]) == tTrue {
				kept = append(kept, c)
				continue
			}
			// Look for a new literal to watch.
			found := false
			for i := 2; i < len(c.lits); i++ {
				if s.value(c.lits[i]) != tFalse {
					c.lits[1], c.lits[i] = c.lits[i], c.lits[1]
					s.watches[c.lits[1].negate()] = append(s.watches[c.lits[1].negate()], c)
					found = true
					break
				}
			}
			if found {
				continue // moved to another watch list
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if s.value(c.lits[0]) == tFalse {
				conflict = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(c.lits[0], c)
			}
		}
		s.watches[p] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt
// clause (asserting literal first) and the backtrack level.
func (s *sat) analyze(conflict *clause) ([]lit, int) {
	learnt := []lit{litUndef}
	counter := 0
	var p lit = litUndef
	idx := len(s.trail) - 1
	c := conflict
	for {
		start := 0
		if p != litUndef {
			start = 1
		}
		for _, q := range c.lits[start:] {
			v := q.vindex()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Select next literal from trail.
		for !s.seen[s.trail[idx].vindex()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.vindex()
		s.seen[v] = false
		counter--
		c = s.reason[v]
		if counter == 0 {
			break
		}
	}
	learnt[0] = p.negate()
	// Compute backtrack level: max level among learnt[1:].
	bt := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].vindex()] > s.level[learnt[maxI].vindex()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		bt = s.level[learnt[1].vindex()]
	}
	for _, q := range learnt {
		s.seen[q.vindex()] = false
	}
	return learnt, bt
}

func (s *sat) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(s.heapPos[v])
	}
}

func (s *sat) decayActivities() { s.varInc /= 0.95 }

func (s *sat) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	bound := s.trailLim[level]
	for i := len(s.trail) - 1; i >= bound; i-- {
		v := s.trail[i].vindex()
		s.polarity[v] = s.assigns[v] == tTrue
		s.assigns[v] = tUndef
		s.reason[v] = nil
		if s.heapPos[v] < 0 {
			s.heapInsert(v)
		}
	}
	s.trail = s.trail[:bound]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *sat) pickBranchVar() int {
	// Seeded workers occasionally branch on a uniformly random
	// undecided variable instead of the activity maximum. The variable
	// is peeked, not removed: when it is later popped while assigned
	// the loop below discards it, and backtracking reinserts only
	// variables absent from the heap, so the heap stays consistent.
	if s.randDecPm > 0 && len(s.heap) > 0 && s.nextRand()%1000 < s.randDecPm {
		if v := s.heap[s.nextRand()%uint64(len(s.heap))]; s.assigns[v] == tUndef {
			return v
		}
	}
	for len(s.heap) > 0 {
		v := s.heapRemoveMax()
		if s.assigns[v] == tUndef {
			return v
		}
	}
	return -1
}

// Heap operations (max-heap on activity).

func (s *sat) heapInsert(v int) {
	s.heap = append(s.heap, v)
	s.heapPos[v] = len(s.heap) - 1
	s.heapUp(len(s.heap) - 1)
}

func (s *sat) heapUp(i int) {
	v := s.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if s.activity[s.heap[p]] >= s.activity[v] {
			break
		}
		s.heap[i] = s.heap[p]
		s.heapPos[s.heap[i]] = i
		i = p
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *sat) heapDown(i int) {
	v := s.heap[i]
	n := len(s.heap)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && s.activity[s.heap[c+1]] > s.activity[s.heap[c]] {
			c++
		}
		if s.activity[s.heap[c]] <= s.activity[v] {
			break
		}
		s.heap[i] = s.heap[c]
		s.heapPos[s.heap[i]] = i
		i = c
	}
	s.heap[i] = v
	s.heapPos[v] = i
}

func (s *sat) heapRemoveMax() int {
	v := s.heap[0]
	last := s.heap[len(s.heap)-1]
	s.heap = s.heap[:len(s.heap)-1]
	s.heapPos[v] = -1
	if len(s.heap) > 0 {
		s.heap[0] = last
		s.heapPos[last] = 0
		s.heapDown(0)
	}
	return v
}

// luby returns the i-th element (1-based) of the Luby restart
// sequence.
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// satResult mirrors Result for the SAT core.
type satResult int

const (
	satSat satResult = iota
	satUnsat
	satUnknown
)

// solve runs the CDCL loop. On satSat, assigns holds a full model.
func (s *sat) solve() satResult { return s.solveAssume(nil) }

// solveAssume runs the CDCL loop under the given assumption literals
// (MiniSat-style incremental interface). Assumptions are enqueued as
// the first decisions, one per decision level, and are re-enqueued
// automatically after backjumps; if unit propagation ever forces an
// assumption false the formula is unsatisfiable *under the
// assumptions* (satUnsat) without poisoning the clause database.
// Because assumptions are decisions rather than clauses, every clause
// learnt during the search is a consequence of the problem clauses
// alone and remains valid for later calls with different assumptions —
// the property the incremental solver sessions lean on to keep one
// learnt-clause database alive across a pipeline's queries. On satSat,
// assigns holds a full model extending the assumptions.
//
// Trail reuse: on satSat the full satisfying trail is left in place.
// The next call first tries extendModel: flush any implications
// enqueued by clauses attached since (addClauseDynamic), then adapt
// the held model to the new assumption set — re-deciding fresh
// variables, retracting just the suffix of the trail that falsifies
// an assumption, and repairing local conflicts with backjumps clamped
// above the held prefix. This answers the overwhelming share of ER's
// queries (concretizations extend the previous model by construction;
// growing path constraints keep it wholesale) without re-propagating
// the accumulated clause database. Only when extendModel gives up
// does the classic from-scratch descent below run. On satUnsat or
// satUnknown the trail is fully retracted.
func (s *sat) solveAssume(assumps []lit) satResult {
	if res, done := s.fastSolve(assumps); done {
		return res
	}
	return s.searchAssume(assumps)
}

// fastSolve is the search-free front half of solveAssume: known-failed
// cores answer unsat immediately, and a held satisfying trail is
// extended to the new assumption set when possible. The second return
// reports whether the query was decided; when false the caller must
// run searchAssume (possibly raced across portfolio workers — the fast
// path itself is never raced, it belongs to the session's core alone).
func (s *sat) fastSolve(assumps []lit) (satResult, bool) {
	if s.failed {
		s.dropTrail()
		return satUnsat, true
	}
	// propagate() first: clauses attached since the last call may have
	// enqueued implications (their gate-variable cascade) that are not
	// yet flushed. A conflict here is handled by the regular search
	// after backtracking.
	if s.modelHeld {
		if conflict := s.propagate(); conflict == nil && s.extendModel(assumps) {
			s.fastSats++
			return satSat, true
		}
		s.modelHeld = false
	}
	return satUnknown, false
}

// searchAssume is the from-scratch CDCL descent of solveAssume.
func (s *sat) searchAssume(assumps []lit) satResult {
	if s.failed {
		s.dropTrail()
		return satUnsat
	}
	s.modelHeld = false
	s.backtrackTo(0)
	var restarts int64
	conflictsUntilRestart := luby(1) * s.restartBase
	var conflictCount int64
	maxLearnts := len(s.clauses)/2 + 1000
	for {
		conflict := s.propagate()
		if conflict != nil {
			s.conflicts++
			conflictCount++
			if s.budget != nil && !s.budget.spend(50) {
				s.dropTrail()
				return satUnknown
			}
			if s.decisionLevel() == 0 {
				// Conflict with no decisions (and hence no assumptions)
				// assigned: the clause database itself is
				// unsatisfiable, permanently.
				s.failed = true
				s.dropTrail()
				return satUnsat
			}
			learnt, bt := s.analyze(conflict)
			// Publish before attaching: watch maintenance reorders
			// c.lits in place, so the exchange must copy now.
			s.exchange.publish(s.exchangeID, learnt)
			s.backtrackTo(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.watchClause(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayActivities()
			continue
		}
		if conflictCount >= conflictsUntilRestart {
			restarts++
			conflictCount = 0
			conflictsUntilRestart = luby(restarts+1) * s.restartBase
			// Restart above the assumption levels: the assumptions are
			// forced anyway, so re-propagating them buys nothing.
			s.backtrackTo(len(assumps))
			// Restart boundaries are where racing workers absorb each
			// other's learnt clauses: the trail is shallow, so dynamic
			// attachment is cheap and conflicts surface immediately.
			if !s.importShared() {
				s.dropTrail()
				return satUnsat
			}
		}
		if len(s.learnts) > maxLearnts {
			s.reduceLearnts()
			maxLearnts = maxLearnts*11/10 + 100
		}
		if s.budget != nil && !s.budget.spend(1) {
			s.dropTrail()
			return satUnknown
		}
		// Enqueue pending assumptions before free decisions. Level i+1
		// is assumps[i]'s level (already-true assumptions still open a
		// level so the indexing holds after backjumps).
		if dl := s.decisionLevel(); dl < len(assumps) {
			p := assumps[dl]
			if s.value(p) == tFalse {
				s.dropTrail()
				return satUnsat // conflicts with the assumptions
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			if s.value(p) == tUndef {
				s.uncheckedEnqueue(p, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v < 0 {
			s.modelHeld = true
			return satSat
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		neg := !s.polarity[v]
		if s.randPhasePm > 0 && s.nextRand()%1000 < s.randPhasePm {
			neg = s.nextRand()&1 == 0
		}
		s.uncheckedEnqueue(mkLit(v, neg), nil)
	}
}

// importShared drains clauses other portfolio workers learnt since the
// last restart into this core. Shared clauses are consequences of the
// common problem CNF, so attaching them is sound; it reports false
// when an import exposes root-level unsatisfiability.
func (s *sat) importShared() bool {
	for _, lits := range s.exchange.drain(s.exchangeID, &s.exchangeCursor) {
		if !s.addClause(lits) || s.failed {
			return false
		}
		if conflict := s.propagate(); conflict != nil {
			// Conflict while re-propagating an import at (or near) the
			// root: let the regular conflict handling see it by
			// rewinding to level 0; a root conflict is then caught by
			// the caller's level-0 check on the next iteration.
			if s.decisionLevel() == 0 {
				s.failed = true
				return false
			}
			s.backtrackTo(0)
			if s.propagate() != nil {
				s.failed = true
				return false
			}
		}
	}
	return true
}

// extendModel tries to turn the held (propagated, conflict-free)
// trail into a model of the new query without a from-scratch search:
//
//  1. Establish the assumptions. Still-undefined ones are enqueued as
//     fresh decisions; an assumption the held trail *falsifies* is
//     handled by shrinking — backtrack to just below the level that
//     assigned it, retracting only the incompatible suffix of the held
//     trail (everything kept was decided before the offending
//     assignment, so the assumption is free again). Conflicts raised
//     while re-propagating an assumption are repaired with the same
//     bounded CDCL used in step 2 (floor 0). The scan restarts after
//     each shrink or repair because retraction can unassign
//     assumptions already checked.
//  2. Complete the assignment: every remaining free variable (new
//     Tseitin gates, fresh array-read variables) is decided with its
//     saved phase. Local conflicts are repaired with ordinary CDCL
//     analysis whose backjump target is clamped above the kept trail,
//     so everything established in step 1 stays true.
//
// On success the trail is a complete, propagation-saturated,
// conflict-free assignment with every assumption true — a model, by
// the two-watched-literal invariant. On any bail-out (assumption false
// at level 0, shrink or repair bounds exceeded, budget stop) it
// reports false and the regular search runs from scratch; the work
// discarded is work the search would redo anyway.
func (s *sat) extendModel(assumps []lit) bool {
	const maxShrinks = 32
	shrinks := 0
	var repairConf int64
	for i := 0; i < len(assumps); {
		p := assumps[i]
		switch s.value(p) {
		case tTrue:
			i++
		case tUndef:
			if s.budget != nil && !s.budget.spend(1) {
				return false
			}
			s.decisions++
			s.trailLim = append(s.trailLim, len(s.trail))
			s.uncheckedEnqueue(p, nil)
			if conflict := s.propagate(); conflict != nil {
				if !s.repairConflicts(conflict, 0, &repairConf) {
					return false
				}
				i = 0 // repair may have retracted earlier assumptions
				continue
			}
			i++ // propagation never unassigns: earlier assumptions stay true
		default: // tFalse: shrink the held trail below the offending level
			lv := s.level[p.vindex()]
			if lv == 0 || shrinks >= maxShrinks {
				return false // false at the root: genuinely unsat under assumps
			}
			shrinks++
			s.backtrackTo(lv - 1)
			i = 0 // retraction can unassign assumptions already checked
		}
	}
	if shrinks > 0 {
		s.trailShrinks++
	}
	// Levels at or below floor (the kept trail plus the assumption
	// decisions) are never disturbed from here on, so the assumptions
	// stay true in whatever model this extension reaches.
	floor := s.decisionLevel()
	for {
		v := s.pickBranchVar()
		if v < 0 {
			// Complete, propagation-saturated, conflict-free: a model.
			// Defensive re-check of the assumptions (they cannot have
			// been unassigned — backjumps are clamped to floor).
			for _, p := range assumps {
				if s.value(p) != tTrue {
					return false
				}
			}
			return true
		}
		if s.budget != nil && !s.budget.spend(1) {
			return false
		}
		s.decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(mkLit(v, !s.polarity[v]), nil)
		if conflict := s.propagate(); conflict != nil {
			if !s.repairConflicts(conflict, floor, &repairConf) {
				return false
			}
		}
	}
}

// repairConflicts resolves conflict (and any follow-on conflicts from
// re-propagation) with ordinary CDCL analysis, except the backjump
// target is clamped to floor. Clamping is sound — the asserting
// literal's siblings in the learnt clause live at levels <= the
// computed target, so they stay false at any deeper level and the
// clause remains unit there (chronological backtracking). It reports
// false when the shared bound *repairs is exhausted, a conflict
// arises at or below floor (repair cannot make progress without
// undoing the protected trail), or the budget runs out; the caller
// then bails to the regular search.
func (s *sat) repairConflicts(conflict *clause, floor int, repairs *int64) bool {
	for ; conflict != nil; conflict = s.propagate() {
		s.conflicts++
		*repairs++
		if *repairs > 256 || s.decisionLevel() <= floor {
			return false
		}
		if s.budget != nil && !s.budget.spend(50) {
			return false
		}
		learnt, bt := s.analyze(conflict)
		if bt < floor {
			bt = floor
		}
		s.backtrackTo(bt)
		if len(learnt) == 1 {
			s.uncheckedEnqueue(learnt[0], nil)
		} else {
			c := &clause{lits: learnt, learnt: true}
			s.learnts = append(s.learnts, c)
			s.watchClause(c)
			s.uncheckedEnqueue(learnt[0], c)
		}
		s.decayActivities()
	}
	return true
}

// dropTrail fully retracts the trail and forgets any reusable state;
// called on every non-sat exit so later queries start from scratch.
func (s *sat) dropTrail() {
	s.backtrackTo(0)
	s.modelHeld = false
}

// reduceLearnts drops roughly half of the learnt clauses (the longer
// ones), keeping reason clauses.
func (s *sat) reduceLearnts() {
	locked := make(map[*clause]bool)
	for _, c := range s.reason {
		if c != nil && c.learnt {
			locked[c] = true
		}
	}
	// Simple policy: keep binary clauses and the shorter half.
	kept := s.learnts[:0]
	removed := make(map[*clause]bool)
	n := len(s.learnts)
	for i, c := range s.learnts {
		if locked[c] || len(c.lits) <= 2 || i >= n/2 {
			kept = append(kept, c)
		} else {
			removed[c] = true
		}
	}
	s.learnts = kept
	if len(removed) == 0 {
		return
	}
	for li := range s.watches {
		ws := s.watches[li]
		out := ws[:0]
		for _, c := range ws {
			if !removed[c] {
				out = append(out, c)
			}
		}
		s.watches[li] = out
	}
}

// modelValue returns the model value of var v after satSat.
func (s *sat) modelValue(v int) bool { return s.assigns[v] == tTrue }

// rootFacts returns the level-0 prefix of the trail: every literal
// forced by the clause database alone, with no decisions involved.
// Unit clauses never enter s.clauses (they are enqueued directly), so
// this prefix is the only record of them. It only grows while the
// variable numbering is stable, which is what lets portfolio replicas
// track it with a cursor. The returned slice aliases the trail — copy
// before mutating, and only read it while the core is idle.
func (s *sat) rootFacts() []lit {
	bound := len(s.trail)
	if s.decisionLevel() > 0 {
		bound = s.trailLim[0]
	}
	return s.trail[:bound]
}
