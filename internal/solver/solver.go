package solver

import (
	"fmt"
	"strings"
	"time"

	"execrecon/internal/absint"
	"execrecon/internal/expr"
	"execrecon/internal/telemetry"
)

// Result is the outcome of a Solve call.
type Result int

const (
	// ResultSat: a model satisfying all constraints was found.
	ResultSat Result = iota
	// ResultUnsat: the constraints are unsatisfiable.
	ResultUnsat
	// ResultUnknown: the solver exhausted its budget or deadline —
	// the "solver timeout" that ER interprets as a symbolic
	// execution stall.
	ResultUnknown
)

func (r Result) String() string {
	switch r {
	case ResultSat:
		return "sat"
	case ResultUnsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Options configures a Solve call.
type Options struct {
	// MaxSteps bounds abstract solver work; 0 means unlimited.
	MaxSteps int64
	// Timeout bounds wall-clock time; 0 means unlimited.
	Timeout time.Duration
	// Validate re-evaluates the original constraints under the
	// model and fails loudly on mismatch. Cheap; on by default via
	// DefaultOptions.
	Validate bool
	// MaxSessionNodes bounds an Incremental session's interned
	// expression nodes before it resets its caches (0 means
	// DefaultMaxSessionNodes). Ignored by the one-shot Solver.
	MaxSessionNodes int
	// Metrics, when set, receives an Incremental session's counters
	// (er_solver_*) in the shared telemetry registry: one delta
	// update per Solve call, so many sessions can share one registry
	// without double counting. The IncStats struct remains the
	// per-session view. Ignored by the one-shot Solver.
	Metrics *telemetry.Registry
	// Stop, when set, cancels in-flight solves promptly: it is
	// observed on every budget spend (each CDCL decision, conflict,
	// and Tseitin gate), not just at the deadline-check cadence. A
	// canceled solve returns ResultUnknown.
	Stop *Cancel
	// Portfolio, when Workers > 1, races the CDCL search phase across
	// seeded workers (and cube splits) sharing a bounded learned-
	// clause exchange; the first definitive verdict wins and cancels
	// the rest. Verdict-preserving: only latency changes.
	Portfolio PortfolioOptions
	// Absint enables the abstract-interpretation pre-discharge pass:
	// before blasting, the query is evaluated in the interval +
	// known-bits domain (internal/absint). Decided queries skip CDCL
	// entirely (Sat only with a concretely validated model);
	// undecided ones blast with refined variable bits pinned to
	// constants, shrinking the CNF. Verdict-preserving.
	Absint bool
}

// Backend is the query interface shared by the one-shot Solver and
// the persistent Incremental session, letting callers (the symbolic
// executor, the ER pipeline) swap fresh-per-query solving for
// session-cached solving without caring which they hold.
type Backend interface {
	// Solve decides the conjunction of cs.
	Solve(cs []*expr.Expr) (Result, *expr.Assignment, error)
	// LastStats returns statistics for the most recent Solve call.
	LastStats() Stats
}

var (
	_ Backend = (*Solver)(nil)
	_ Backend = (*Incremental)(nil)
)

// DefaultOptions returns options with validation enabled and no
// limits.
func DefaultOptions() Options { return Options{Validate: true} }

// Stats describes the work a Solve call performed.
type Stats struct {
	Steps        int64
	SATVars      int
	SATClauses   int
	Propagations int64
	Conflicts    int64
	Decisions    int64
	Elapsed      time.Duration
	// AbsintDischarged reports that the abstract pre-discharge pass
	// decided the query without bit blasting.
	AbsintDischarged bool
	// AbsintBits counts variable bits pinned to constants during
	// blasting from abstract known-bits facts.
	AbsintBits int
}

// Solver decides conjunctions of bitvector/array constraints built
// with a shared expr.Builder. Each Solve call is independent.
type Solver struct {
	b      *expr.Builder
	opts   Options
	last   Stats
	pstats PortfolioStats
}

// PortfolioStats returns the cumulative racing counters (zero when no
// portfolio is configured).
func (s *Solver) PortfolioStats() PortfolioStats { return s.pstats }

// New returns a Solver over builder b.
func New(b *expr.Builder, opts Options) *Solver {
	return &Solver{b: b, opts: opts}
}

// LastStats returns statistics for the most recent Solve call.
func (s *Solver) LastStats() Stats { return s.last }

// Solve decides the conjunction of cs. On ResultSat the returned
// assignment satisfies every constraint; on other results it is nil.
func (s *Solver) Solve(cs []*expr.Expr) (Result, *expr.Assignment, error) {
	start := time.Now()
	budget := &Budget{MaxSteps: s.opts.MaxSteps, Timeout: s.opts.Timeout, Stop: s.opts.Stop}
	s.last = Stats{}
	// Stats are populated on *every* exit path via defer — including
	// budget-exhausted ResultUnknown returns, which are exactly the
	// solves ER's stall detection keys off. (They used to be recorded
	// only on the happy path, so stalled queries reported zero
	// SATVars/SATClauses and CDCL counters.)
	var core *sat
	defer func() {
		s.last.Steps = budget.Used()
		s.last.Elapsed = time.Since(start)
		if core != nil {
			s.last.SATVars = core.numVars
			s.last.SATClauses = len(core.clauses)
			s.last.Propagations = core.propagations
			s.last.Conflicts = core.conflicts
			s.last.Decisions = core.decisions
		}
	}()

	// Fast paths on trivially decided constraints.
	remaining := make([]*expr.Expr, 0, len(cs))
	for _, c := range cs {
		if c.IsTrue() {
			continue
		}
		if c.IsFalse() {
			return ResultUnsat, nil, nil
		}
		if !c.IsBool() {
			return ResultUnknown, nil, fmt.Errorf("solver: non-boolean constraint %s", c.Kind)
		}
		remaining = append(remaining, c)
	}
	if len(remaining) == 0 {
		return ResultSat, expr.NewAssignment(), nil
	}

	// Stage 0: abstract pre-discharge. Unsat is proven by
	// over-approximation; Sat verdicts carry a model AnalyzeQuery has
	// already validated concretely against the constraints.
	var narrow map[string]absint.Val
	if s.opts.Absint {
		aq := absint.AnalyzeQuery(s.b, remaining, absint.QueryOptions{WantModel: true})
		switch aq.Verdict {
		case absint.VerdictUnsat:
			s.last.AbsintDischarged = true
			return ResultUnsat, nil, nil
		case absint.VerdictSat:
			s.last.AbsintDischarged = true
			return ResultSat, aq.Model, nil
		}
		narrow = aq.Vars
	}

	// Stage 1: array elimination.
	elim := newArrayElim(s.b, budget)
	pure, err := elim.run(remaining)
	if err != nil {
		if err == errBudget {
			return ResultUnknown, nil, nil
		}
		return ResultUnknown, nil, err
	}

	// Stage 2: bit blasting, with query-refined variable bits pinned.
	core = newSAT(budget)
	bl := newBlaster(core, budget)
	bl.narrow = narrow
	unsatEarly := false
	for _, c := range pure {
		if c.IsTrue() {
			continue
		}
		if c.IsFalse() {
			unsatEarly = true
			break
		}
		bl.assert(c)
		if bl.err != nil {
			break
		}
	}
	s.last.AbsintBits = bl.bitsNarrowed
	if bl.err == errBudget {
		return ResultUnknown, nil, nil
	}
	if bl.err != nil {
		return ResultUnknown, nil, bl.err
	}
	if unsatEarly {
		return ResultUnsat, nil, nil
	}

	// Stage 3: CDCL — raced across seeded workers when a portfolio is
	// configured, solo otherwise. The winner core holds the model.
	winner := core
	if s.opts.Portfolio.Workers > 1 {
		var sres satResult
		var done bool
		if sres, done = core.fastSolve(nil); !done {
			// One-shot queries race over a throwaway pool: catch-up
			// replicates the whole CNF once, exactly as a clone would.
			sres, winner = raceSearch(core, &replicaPool{}, nil, s.opts.Portfolio, &s.pstats)
		}
		switch sres {
		case satUnsat:
			return ResultUnsat, nil, nil
		case satUnknown:
			return ResultUnknown, nil, nil
		}
	} else {
		switch core.solve() {
		case satUnsat:
			return ResultUnsat, nil, nil
		case satUnknown:
			return ResultUnknown, nil, nil
		}
	}

	// Stage 4: model extraction.
	asn, err := extractModelFrom(bl, elim, winner)
	if err != nil {
		return ResultUnknown, nil, err
	}
	if s.opts.Validate {
		ok, err := asn.Satisfies(remaining)
		if err != nil {
			return ResultUnknown, nil, fmt.Errorf("solver: model validation error: %w", err)
		}
		if !ok {
			return ResultUnknown, nil, fmt.Errorf("solver: internal error: model does not satisfy constraints")
		}
	}
	return ResultSat, asn, nil
}

// extractModel builds the satisfying assignment from the SAT model:
// named bitvector variables read back from their bit literals, and
// array models rebuilt from the Ackermann read terms (read-term index
// expressions are pure bitvector expressions over model variables, so
// they evaluate directly). Internal $rd read variables are dropped
// from the visible model.
func extractModel(bl *blaster, elim *arrayElim) (*expr.Assignment, error) {
	return extractModelFrom(bl, elim, bl.s)
}

// extractModelFrom is extractModel reading the SAT model from core —
// the portfolio race's winner, which may be a clone of the blaster's
// own core.
func extractModelFrom(bl *blaster, elim *arrayElim, core *sat) (*expr.Assignment, error) {
	asn := expr.NewAssignment()
	for name := range bl.vars {
		if v, ok := bl.modelVarFrom(core, name); ok {
			asn.Vars[name] = v
		}
	}
	for name, rs := range elim.reads {
		av := asn.Arrays[name]
		if av == nil {
			av = &expr.ArrayValue{Elems: make(map[uint64]uint64)}
			asn.Arrays[name] = av
		}
		for _, r := range rs {
			iv, err := asn.Eval(r.idx)
			if err != nil {
				return nil, err
			}
			vv, err := asn.Eval(r.v)
			if err != nil {
				return nil, err
			}
			av.Elems[iv] = vv
		}
	}
	for name := range asn.Vars {
		if strings.HasPrefix(name, "$rd") {
			delete(asn.Vars, name)
		}
	}
	return asn, nil
}

// MayBeTrue reports whether cond can be true together with the path
// constraint pc.
func (s *Solver) MayBeTrue(pc []*expr.Expr, cond *expr.Expr) (bool, error) {
	res, _, err := s.Solve(append(append([]*expr.Expr{}, pc...), cond))
	if err != nil {
		return false, err
	}
	switch res {
	case ResultSat:
		return true, nil
	case ResultUnsat:
		return false, nil
	}
	return false, ErrTimeout
}

// MustBeTrue reports whether cond is implied by the path constraint.
func (s *Solver) MustBeTrue(pc []*expr.Expr, cond *expr.Expr) (bool, error) {
	may, err := s.MayBeTrue(pc, s.b.BoolNot(cond))
	if err != nil {
		return false, err
	}
	return !may, nil
}

// ErrTimeout is returned by helper predicates when the budget or
// deadline is exhausted before a verdict.
var ErrTimeout = fmt.Errorf("solver: timeout")
