package solver

import (
	"fmt"
	"math/rand"
	"testing"

	"execrecon/internal/expr"
)

func solveAll(t *testing.T, b *expr.Builder, cs []*expr.Expr) (Result, *expr.Assignment) {
	t.Helper()
	s := New(b, DefaultOptions())
	res, asn, err := s.Solve(cs)
	if err != nil {
		t.Fatalf("solve error: %v", err)
	}
	return res, asn
}

func TestSatSimple(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	res, asn := solveAll(t, b, []*expr.Expr{b.Eq(b.Add(x, b.Const(1, 32)), b.Const(10, 32))})
	if res != ResultSat {
		t.Fatalf("result: %v", res)
	}
	if asn.Vars["x"] != 9 {
		t.Errorf("x = %d, want 9", asn.Vars["x"])
	}
}

func TestUnsatSimple(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 16)
	res, _ := solveAll(t, b, []*expr.Expr{
		b.Ult(x, b.Const(5, 16)),
		b.Ult(b.Const(10, 16), x),
	})
	if res != ResultUnsat {
		t.Fatalf("result: %v, want unsat", res)
	}
}

func TestSatConjunction(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	cs := []*expr.Expr{
		b.Eq(b.Add(x, y), b.Const(100, 32)),
		b.Ult(x, b.Const(30, 32)),
		b.Ult(b.Const(25, 32), x),
	}
	res, asn := solveAll(t, b, cs)
	if res != ResultSat {
		t.Fatalf("result: %v", res)
	}
	xv, yv := asn.Vars["x"], asn.Vars["y"]
	if xv+yv != 100 || xv >= 30 || xv <= 25 {
		t.Errorf("model x=%d y=%d does not satisfy", xv, yv)
	}
}

func TestMultiplication(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 16)
	y := b.Var("y", 16)
	cs := []*expr.Expr{
		b.Eq(b.Mul(x, y), b.Const(77, 16)),
		b.Ult(b.Const(1, 16), x),
		b.Ult(x, y),
	}
	res, asn := solveAll(t, b, cs)
	if res != ResultSat {
		t.Fatalf("result: %v", res)
	}
	xv, yv := asn.Vars["x"], asn.Vars["y"]
	if uint16(xv)*uint16(yv) != 77 {
		t.Errorf("model x=%d y=%d: product %d", xv, yv, uint16(xv)*uint16(yv))
	}
}

func TestDivision(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 16)
	cs := []*expr.Expr{
		b.Eq(b.UDiv(x, b.Const(7, 16)), b.Const(6, 16)),
		b.Eq(b.URem(x, b.Const(7, 16)), b.Const(3, 16)),
	}
	res, asn := solveAll(t, b, cs)
	if res != ResultSat {
		t.Fatalf("result: %v", res)
	}
	if asn.Vars["x"] != 45 {
		t.Errorf("x = %d, want 45", asn.Vars["x"])
	}
}

func TestSignedComparison(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	cs := []*expr.Expr{
		b.Slt(x, b.Const(0, 8)),
		b.Sgt(x, b.Const(0xf6, 8)), // -10
	}
	res, asn := solveAll(t, b, cs)
	if res != ResultSat {
		t.Fatalf("result: %v", res)
	}
	sx := expr.SignExtendValue(asn.Vars["x"], 8)
	if sx >= 0 || sx <= -10 {
		t.Errorf("x = %d out of (-10,0)", sx)
	}
}

func TestSignedDivision(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 8)
	// x / -3 == 5 (signed): x in {-15,-16,-17}
	cs := []*expr.Expr{
		b.Eq(b.SDiv(x, b.Const(0xfd, 8)), b.Const(0xfb, 8)), // x / -3 == -5
	}
	res, asn := solveAll(t, b, cs)
	if res != ResultSat {
		t.Fatalf("result: %v", res)
	}
	sx := expr.SignExtendValue(asn.Vars["x"], 8)
	if sx/-3 != -5 {
		t.Errorf("x = %d: x/-3 = %d", sx, sx/-3)
	}
}

func TestShiftSolving(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 16)
	sh := b.Var("sh", 16)
	cs := []*expr.Expr{
		b.Eq(b.Shl(x, sh), b.Const(0x50, 16)),
		b.Eq(sh, b.Const(4, 16)),
		b.Ult(x, b.Const(16, 16)),
	}
	res, asn := solveAll(t, b, cs)
	if res != ResultSat {
		t.Fatalf("result: %v", res)
	}
	if asn.Vars["x"] != 5 {
		t.Errorf("x = %d, want 5", asn.Vars["x"])
	}
}

func TestIteSolving(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	y := b.Var("y", 32)
	cond := b.Ult(x, b.Const(10, 32))
	cs := []*expr.Expr{
		b.Eq(b.Ite(cond, y, b.Const(0, 32)), b.Const(55, 32)),
	}
	res, asn := solveAll(t, b, cs)
	if res != ResultSat {
		t.Fatalf("result: %v", res)
	}
	if asn.Vars["x"] >= 10 || asn.Vars["y"] != 55 {
		t.Errorf("model x=%d y=%d", asn.Vars["x"], asn.Vars["y"])
	}
}

func TestArrayStoreSelect(t *testing.T) {
	b := expr.NewBuilder()
	arr := b.ConstArray(b.Const(0, 8), 32)
	i := b.Var("i", 32)
	st := b.Store(arr, i, b.Const(1, 8))
	j := b.Var("j", 32)
	// Reading st at j yields 1 exactly when j == i; require it reads 1
	// and j != 5 while i == 5... unsat. And a sat variant.
	csUnsat := []*expr.Expr{
		b.Eq(b.Select(st, j), b.Const(1, 8)),
		b.Eq(i, b.Const(5, 32)),
		b.Ne(j, b.Const(5, 32)),
	}
	res, _ := solveAll(t, b, csUnsat)
	if res != ResultUnsat {
		t.Fatalf("unsat case: got %v", res)
	}
	csSat := []*expr.Expr{
		b.Eq(b.Select(st, j), b.Const(1, 8)),
		b.Eq(i, b.Const(5, 32)),
	}
	res, asn := solveAll(t, b, csSat)
	if res != ResultSat {
		t.Fatalf("sat case: got %v", res)
	}
	if asn.Vars["j"] != 5 {
		t.Errorf("j = %d, want 5", asn.Vars["j"])
	}
}

func TestFreeArrayAckermann(t *testing.T) {
	b := expr.NewBuilder()
	arr := b.ArrayVar("A", 32, 8)
	i := b.Var("i", 32)
	j := b.Var("j", 32)
	cs := []*expr.Expr{
		b.Eq(i, j),
		b.Ne(b.Select(arr, i), b.Select(arr, j)),
	}
	res, _ := solveAll(t, b, cs)
	if res != ResultUnsat {
		t.Fatalf("functional consistency violated: %v", res)
	}
	cs2 := []*expr.Expr{
		b.Eq(b.Select(arr, i), b.Const(3, 8)),
		b.Eq(b.Select(arr, j), b.Const(4, 8)),
	}
	res, asn := solveAll(t, b, cs2)
	if res != ResultSat {
		t.Fatalf("distinct reads: %v", res)
	}
	if asn.Vars["i"] == asn.Vars["j"] {
		t.Errorf("i and j must differ, both %d", asn.Vars["i"])
	}
	av := asn.Arrays["A"]
	if av == nil || av.Get(asn.Vars["i"]) != 3 || av.Get(asn.Vars["j"]) != 4 {
		t.Errorf("array model wrong: %+v", av)
	}
}

// TestPaperRunningExample encodes Fig. 3 of the paper: V[V[x]] = x and
// if (V[V[d]] == x) with the control-flow constraints, checking that a
// model reproduces the abort path (which requires x == d).
func TestPaperRunningExample(t *testing.T) {
	b := expr.NewBuilder()
	la := b.Var("a", 32)
	lb := b.Var("b", 32)
	lc := b.Var("c", 32)
	ld := b.Var("d", 32)
	x := b.Add(la, lb)
	V0 := b.ConstArray(b.Const(0, 32), 32)

	var pc []*expr.Expr
	// Line 4 taken: x < 256 && c < 256 && d < 256.
	pc = append(pc, b.Ult(x, b.Const(256, 32)), b.Ult(lc, b.Const(256, 32)), b.Ult(ld, b.Const(256, 32)))
	// Line 5: V[x] = 1.
	V1 := b.Store(V0, x, b.Const(1, 32))
	// Line 6 taken: V[c] == 0, then line 7: V[c] = 512.
	pc = append(pc, b.Eq(b.Select(V1, lc), b.Const(0, 32)))
	V2 := b.Store(V1, lc, b.Const(512, 32))
	// Line 8: V[V[x]] = x.
	vx := b.Select(V2, x)
	V3 := b.Store(V2, vx, x)
	// Line 9 taken: c < d.
	pc = append(pc, b.Ult(lc, ld))
	// Line 10 taken: V[V[d]] == x  -> abort.
	vd := b.Select(V3, ld)
	pc = append(pc, b.Eq(b.Select(V3, vd), x))

	res, asn := solveAll(t, b, pc)
	if res != ResultSat {
		t.Fatalf("paper example should be satisfiable: %v", res)
	}
	// Verify the model reaches the abort by direct evaluation.
	ok, err := asn.Satisfies(pc)
	if err != nil || !ok {
		t.Fatalf("model check: ok=%v err=%v", ok, err)
	}
	xv := asn.Vars["a"] + asn.Vars["b"]
	t.Logf("model: a=%d b=%d c=%d d=%d (x=%d)", asn.Vars["a"], asn.Vars["b"], asn.Vars["c"], asn.Vars["d"], xv&0xffffffff)
}

func TestBudgetTimeout(t *testing.T) {
	b := expr.NewBuilder()
	// A long symbolic write chain with interdependent indices: the
	// classic stall pattern. With a tiny budget the solver must
	// report unknown rather than spin.
	arr := b.ConstArray(b.Const(0, 32), 32)
	cur := arr
	for k := 0; k < 40; k++ {
		ik := b.Var(fmt.Sprintf("i%d", k), 32)
		v := b.Select(cur, ik)
		cur = b.Store(cur, b.Add(ik, v), b.Add(v, b.Const(1, 32)))
	}
	final := b.Select(cur, b.Var("j", 32))
	cs := []*expr.Expr{b.Eq(final, b.Const(7, 32))}
	s := New(b, Options{MaxSteps: 500})
	res, _, err := s.Solve(cs)
	if err != nil {
		t.Fatalf("error: %v", err)
	}
	if res != ResultUnknown {
		t.Fatalf("tiny budget: got %v, want unknown", res)
	}
	if s.LastStats().Steps == 0 {
		t.Error("steps not recorded")
	}
}

func TestMayMustBeTrue(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	pc := []*expr.Expr{b.Ult(x, b.Const(10, 32))}
	s := New(b, DefaultOptions())
	may, err := s.MayBeTrue(pc, b.Eq(x, b.Const(5, 32)))
	if err != nil || !may {
		t.Errorf("x==5 should be possible: may=%v err=%v", may, err)
	}
	may, err = s.MayBeTrue(pc, b.Eq(x, b.Const(50, 32)))
	if err != nil || may {
		t.Errorf("x==50 should be impossible: may=%v err=%v", may, err)
	}
	must, err := s.MustBeTrue(pc, b.Ult(x, b.Const(11, 32)))
	if err != nil || !must {
		t.Errorf("x<11 should be implied: must=%v err=%v", must, err)
	}
	must, err = s.MustBeTrue(pc, b.Ult(x, b.Const(5, 32)))
	if err != nil || must {
		t.Errorf("x<5 should not be implied: must=%v err=%v", must, err)
	}
}

// TestRandomizedModels generates random constraint systems that are
// satisfiable by construction (built from a hidden witness) and checks
// that the solver finds some model satisfying them.
func TestRandomizedModels(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		b := expr.NewBuilder()
		nv := 2 + rng.Intn(3)
		vars := make([]*expr.Expr, nv)
		witness := expr.NewAssignment()
		for i := range vars {
			name := string(rune('p' + i))
			vars[i] = b.Var(name, 16)
			witness.Vars[name] = uint64(rng.Intn(1 << 16))
		}
		// Build random terms and constrain them to their witness
		// values.
		var cs []*expr.Expr
		term := func() *expr.Expr {
			a := vars[rng.Intn(nv)]
			c := vars[rng.Intn(nv)]
			switch rng.Intn(6) {
			case 0:
				return b.Add(a, c)
			case 1:
				return b.Sub(a, c)
			case 2:
				return b.And(a, c)
			case 3:
				return b.Or(a, c)
			case 4:
				return b.Xor(a, c)
			default:
				return b.Mul(a, b.Const(uint64(rng.Intn(7)+1), 16))
			}
		}
		for k := 0; k < 4; k++ {
			e := term()
			cs = append(cs, b.Eq(e, b.Const(witness.MustEval(e), 16)))
		}
		res, asn := solveAll(t, b, cs)
		if res != ResultSat {
			t.Fatalf("trial %d: unsat/unknown on satisfiable system", trial)
		}
		ok, err := asn.Satisfies(cs)
		if err != nil || !ok {
			t.Fatalf("trial %d: model invalid: %v", trial, err)
		}
	}
}

// TestRandomizedUnsat pairs each constraint with its negation.
func TestRandomizedUnsat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		b := expr.NewBuilder()
		x := b.Var("x", 16)
		y := b.Var("y", 16)
		var e *expr.Expr
		switch rng.Intn(4) {
		case 0:
			e = b.Eq(b.Add(x, y), b.Const(uint64(rng.Intn(100)), 16))
		case 1:
			e = b.Ult(b.Xor(x, y), b.Const(uint64(rng.Intn(100)+1), 16))
		case 2:
			e = b.Eq(b.Mul(x, b.Const(3, 16)), y)
		default:
			e = b.Sle(x, y)
		}
		res, _ := solveAll(t, b, []*expr.Expr{e, b.BoolNot(e)})
		if res != ResultUnsat {
			t.Fatalf("trial %d: e ∧ ¬e must be unsat, got %v", trial, res)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var("x", 32)
	s := New(b, DefaultOptions())
	res, _, err := s.Solve([]*expr.Expr{b.Eq(b.Mul(x, x), b.Const(1369, 32)), b.Ult(x, b.Const(256, 32))})
	if err != nil || res != ResultSat {
		t.Fatalf("res=%v err=%v", res, err)
	}
	st := s.LastStats()
	if st.SATVars == 0 || st.SATClauses == 0 || st.Elapsed == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

func TestEmptyAndTrivial(t *testing.T) {
	b := expr.NewBuilder()
	res, asn := solveAll(t, b, nil)
	if res != ResultSat || asn == nil {
		t.Error("empty constraints should be trivially sat")
	}
	res, _ = solveAll(t, b, []*expr.Expr{b.True(), b.True()})
	if res != ResultSat {
		t.Error("all-true should be sat")
	}
	res, _ = solveAll(t, b, []*expr.Expr{b.False()})
	if res != ResultUnsat {
		t.Error("false should be unsat")
	}
}
