package symex_test

import (
	"testing"

	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// corruptTrace returns a copy of tr with one TNT bit flipped.
func corruptTrace(tr *pt.Trace, flipAt int) *pt.Trace {
	out := &pt.Trace{Events: append([]pt.Event(nil), tr.Events...)}
	seen := 0
	for i := range out.Events {
		if out.Events[i].Kind == pt.EvTNT {
			if seen == flipAt {
				out.Events[i].Taken = !out.Events[i].Taken
				break
			}
			seen++
		}
	}
	return out
}

const advSrc = `
func main() int {
	int x = input32("x");
	if (x > 10) {
		if (x > 100) { abort("big"); }
		output(x);
	}
	assert(x != 5, "five");
	return 0;
}`

func advRecord(t *testing.T) (*ir.Module, *pt.Trace, *vm.Result) {
	t.Helper()
	mod, err := minc.Compile("t", advSrc)
	if err != nil {
		t.Fatal(err)
	}
	ring := pt.NewRing(1 << 20)
	enc := pt.NewEncoder(ring)
	res := vm.New(mod, vm.Config{Input: vm.NewWorkload().Add("x", 5), Tracer: enc, Seed: 1}).Run("main")
	if res.Failure == nil {
		t.Fatal("no failure")
	}
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	return mod, tr, res
}

// TestCorruptedTraceDiverges flips branch bits: the engine must report
// divergence (or an unsatisfiable path) rather than panic or
// fabricate a test case.
func TestCorruptedTraceDiverges(t *testing.T) {
	mod, tr, res := advRecord(t)
	var tnt int
	for _, ev := range tr.Events {
		if ev.Kind == pt.EvTNT {
			tnt++
		}
	}
	for flip := 0; flip < tnt; flip++ {
		bad := corruptTrace(tr, flip)
		sres := symex.New(mod, bad, res.Failure, symex.Options{}).Run("main")
		if sres.Status == symex.StatusCompleted {
			// A flipped bit can still reach the failure only if the
			// resulting path genuinely fails the same way; verify.
			rerun := vm.New(mod, vm.Config{Input: sres.TestCase.Clone(), Seed: 1}).Run("main")
			if rerun.Failure == nil || !rerun.Failure.SameSignature(res.Failure) {
				t.Errorf("flip %d: fabricated test case", flip)
			}
			continue
		}
		if sres.Status != symex.StatusDiverged && sres.Status != symex.StatusError {
			t.Errorf("flip %d: status %v", flip, sres.Status)
		}
	}
}

// TestTruncatedTrace drops trailing events: the engine must fail
// gracefully.
func TestTruncatedTrace(t *testing.T) {
	mod, tr, res := advRecord(t)
	for cut := 0; cut < len(tr.Events); cut++ {
		bad := &pt.Trace{Events: tr.Events[:cut]}
		sres := symex.New(mod, bad, res.Failure, symex.Options{}).Run("main")
		if sres.Status == symex.StatusCompleted {
			rerun := vm.New(mod, vm.Config{Input: sres.TestCase.Clone(), Seed: 1}).Run("main")
			if rerun.Failure == nil || !rerun.Failure.SameSignature(res.Failure) {
				t.Errorf("cut %d: fabricated test case", cut)
			}
		}
	}
}

// TestWrongFailureSignature hands the engine a failure at a location
// the trace never reaches.
func TestWrongFailureSignature(t *testing.T) {
	mod, tr, res := advRecord(t)
	fake := *res.Failure
	fake.Func = "main"
	fake.InstrID = 32000 // nonexistent
	sres := symex.New(mod, tr, &fake, symex.Options{}).Run("main")
	if sres.Status == symex.StatusCompleted {
		t.Errorf("completed against a nonexistent failure site")
	}
}

// TestEmptyTrace must not panic.
func TestEmptyTrace(t *testing.T) {
	mod, _, res := advRecord(t)
	sres := symex.New(mod, &pt.Trace{}, res.Failure, symex.Options{}).Run("main")
	if sres.Status == symex.StatusCompleted {
		t.Error("completed on an empty trace")
	}
}

// TestMismatchedModule replays a trace against a module with an extra
// ptwrite the trace does not contain.
func TestMismatchedModule(t *testing.T) {
	mod, tr, res := advRecord(t)
	instr := mod.Clone()
	fn := instr.FuncByName("main")
	// Insert a ptwrite after the first instruction of block 0.
	blk := fn.Blocks[0]
	ptw := ir.Instr{Op: ir.OpPtWrite, W: ir.W32, A: ir.Reg(blk.Instrs[0].Dst), ID: fn.NewInstrID()}
	blk.Instrs = append(blk.Instrs[:1], append([]ir.Instr{ptw}, blk.Instrs[1:]...)...)
	if err := instr.Validate(); err != nil {
		t.Fatal(err)
	}
	sres := symex.New(instr, tr, res.Failure, symex.Options{}).Run("main")
	if sres.Status == symex.StatusCompleted {
		t.Error("completed despite module/trace mismatch")
	}
}

// TestReconstructIndirectCalls covers TIP-driven reconstruction of a
// dispatch table.
func TestReconstructIndirectCalls(t *testing.T) {
	src := `
func h0(long x) long { return x + 1; }
func h1(long x) long { return x * 2; }
func h2(long x) long { return x - 3; }
func main() int {
	long t0 = fnptr("h0");
	long t1 = fnptr("h1");
	long t2 = fnptr("h2");
	long acc = 0;
	for (int i = 0; i < 6; i = i + 1) {
		int sel = input32("sel");
		if (sel < 0 || sel > 2) { return 0; }
		long fp = t0;
		if (sel == 1) { fp = t1; }
		if (sel == 2) { fp = t2; }
		acc = icall1(fp, acc);
	}
	assert(acc != 9, "nine");
	return 0;
}`
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	// (((((0+1)*2)+1)*2)-3)+... find a failing sequence: try concrete.
	w := vm.NewWorkload().Add("sel", 0, 1, 0, 1, 2, 0)
	// acc: 1,2,3,6,3,4 -> not 9; search a sequence that yields 9.
	seqs := [][]uint64{
		{0, 1, 0, 1, 2, 0}, {1, 0, 1, 0, 0, 0}, {0, 0, 0, 1, 1, 0},
		{0, 1, 1, 0, 0, 0}, {0, 0, 1, 0, 1, 2},
	}
	var failW *vm.Workload
	for _, s := range seqs {
		cand := vm.NewWorkload().Add("sel", s...)
		if r := vm.New(mod, vm.Config{Input: cand.Clone(), Seed: 1}).Run("main"); r.Failure != nil {
			failW = cand
			break
		}
	}
	if failW == nil {
		t.Skip("no failing dispatch sequence in the candidate set")
	}
	_ = w
	ring := pt.NewRing(1 << 20)
	enc := pt.NewEncoder(ring)
	res := vm.New(mod, vm.Config{Input: failW.Clone(), Tracer: enc, Seed: 1}).Run("main")
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumTIP == 0 {
		t.Fatal("no TIP packets recorded")
	}
	sres := symex.New(mod, tr, res.Failure, symex.Options{}).Run("main")
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v", sres.Status, sres.Err)
	}
	rerun := vm.New(mod, vm.Config{Input: sres.TestCase.Clone(), Seed: 1}).Run("main")
	if rerun.Failure == nil || !rerun.Failure.SameSignature(res.Failure) {
		t.Errorf("replay: %v", rerun.Failure)
	}
}

// TestDeepCallStackReconstruction exercises compressed-ret handling
// through recursion.
func TestDeepCallStackReconstruction(t *testing.T) {
	src := `
func down(int n, int acc) int {
	if (n == 0) {
		assert(acc != 55, "fifty-five");
		return acc;
	}
	return down(n - 1, acc + n);
}
func main() int {
	return down(input32("n"), 0);
}`
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	ring := pt.NewRing(1 << 20)
	enc := pt.NewEncoder(ring)
	res := vm.New(mod, vm.Config{Input: vm.NewWorkload().Add("n", 10), Tracer: enc, Seed: 1}).Run("main")
	if res.Failure == nil {
		t.Fatal("no failure (1+..+10 = 55)")
	}
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatal(err)
	}
	sres := symex.New(mod, tr, res.Failure, symex.Options{}).Run("main")
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v", sres.Status, sres.Err)
	}
	if got := uint32(sres.TestCase.Streams["n"][0]); got != 10 {
		t.Errorf("n = %d, want 10 (recursion depth pins it)", got)
	}
}
