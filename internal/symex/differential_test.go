package symex_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"execrecon/internal/dataflow"
	"execrecon/internal/keyselect"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// TestSliceDifferential is the randomized soundness gate for
// slice-pruned shepherding: generate arbitrary (valid-by-construction)
// minc programs mixing input-tainted computation with untainted noise,
// record one failing run, shepherd it with and without the static
// failure slice, and require bit-identical outcomes — status, path
// constraint text, per-site dynamic stats, instruction counts, and
// (on stalls) the recording set key data value selection derives from
// each result. Any divergence is a slice soundness bug by definition:
// the slice may only change which instructions go through the
// symbolic machinery, never what the analysis concludes.
func TestSliceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(420))
	trials := 120
	if testing.Short() {
		trials = 30
	}
	var failing, stalled, pruned int
	for trial := 0; trial < trials; trial++ {
		src, w := genProgram(rng)
		mod, tr, res := recordRun(t, src, w, 1)
		if res.Failure == nil {
			continue // benign run; nothing to reconstruct
		}
		failing++
		// Half the trials use a tiny budget to exercise the stall /
		// key-selection path; half run to completion.
		opts := symex.Options{}
		if trial%2 == 1 {
			opts.QueryBudget = 50 + int64(rng.Intn(400))
		}
		full := symex.New(mod, tr, res.Failure, opts).Run("main")
		sopts := opts
		an := dataflow.Analyze(mod)
		sopts.Slice = an
		sliced := symex.New(mod, tr, res.Failure, sopts).Run("main")

		ctx := func() string { return fmt.Sprintf("trial %d\n%s\nworkload: %v", trial, src, w.Streams) }
		if full.Status != sliced.Status {
			t.Fatalf("%s\nstatus: full=%v sliced=%v (sliced err: %v)", ctx(), full.Status, sliced.Status, sliced.Err)
		}
		if full.Status != symex.StatusCompleted && full.Status != symex.StatusStalled {
			continue // e.g. budget exhausted mid-run; parity already checked
		}
		fpc, spc := pcString(t, full), pcString(t, sliced)
		if fpc != spc {
			t.Fatalf("%s\npath constraints differ:\n--- full ---\n%s\n--- sliced ---\n%s", ctx(), fpc, spc)
		}
		checkSiteParity(t, ctx, an, full, sliced)
		if full.Stats.Instrs != sliced.Stats.Instrs {
			t.Fatalf("%s\ninstruction counts differ: %d vs %d", ctx(), full.Stats.Instrs, sliced.Stats.Instrs)
		}
		if sliced.Stats.ConcSteps > 0 {
			pruned++
		}
		if full.Status == symex.StatusStalled {
			stalled++
			// Recording-set parity: selection over the full result
			// (with the same deducibility analysis) and over the
			// sliced result must pick the same sites.
			fsel, ferr := keyselect.SelectWith(full, keyselect.Options{Static: an})
			ssel, serr := keyselect.SelectWith(sliced, keyselect.Options{Static: an})
			if (ferr == nil) != (serr == nil) {
				t.Fatalf("%s\nselection errors differ: full=%v sliced=%v", ctx(), ferr, serr)
			}
			if ferr != nil {
				continue
			}
			fsites := fmt.Sprintf("%v", fsel.Sites)
			ssites := fmt.Sprintf("%v", ssel.Sites)
			if fsites != ssites {
				t.Fatalf("%s\nrecording sets differ:\n  full:   %s\n  sliced: %s", ctx(), fsites, ssites)
			}
			if fsel.TotalCostBytes != ssel.TotalCostBytes {
				t.Fatalf("%s\nrecording costs differ: %d vs %d", ctx(), fsel.TotalCostBytes, ssel.TotalCostBytes)
			}
		}
	}
	// The generator must actually exercise the interesting paths;
	// these floors catch a silently degenerate corpus.
	if failing < trials/4 {
		t.Fatalf("only %d/%d generated programs failed; generator degenerate", failing, trials)
	}
	if pruned == 0 {
		t.Fatal("no trial pruned a single instruction; slice never engaged")
	}
	t.Logf("%d trials: %d failing, %d stalled, %d with native pruning", trials, failing, stalled, pruned)
}

// checkSiteParity enforces the candidate-site contract between a full
// and a slice-pruned shepherding of the same trace: every site the
// sliced run observed must appear in the full run with identical
// dynamic stats, and any site only the full run observed must belong
// to an instruction the slice pruned (a dead definition whose value
// flows into no constraint — e.g. an unused input mov — which key
// selection can therefore never pick).
func checkSiteParity(t *testing.T, ctx func() string, an *dataflow.Analysis, full, sliced *symex.Result) {
	t.Helper()
	for k, sst := range sliced.Sites {
		fst, ok := full.Sites[k]
		if !ok {
			t.Fatalf("%s\nsliced run observed site %s#%d absent from the full run", ctx(), k.Func, k.InstrID)
		}
		if fst.Width != sst.Width || fst.Count != sst.Count {
			t.Fatalf("%s\nsite %s#%d stats differ: full={w%d n%d} sliced={w%d n%d}",
				ctx(), k.Func, k.InstrID, fst.Width, fst.Count, sst.Width, sst.Count)
		}
	}
	for k := range full.Sites {
		if _, ok := sliced.Sites[k]; ok {
			continue
		}
		if m, found := modeOf(an, k); !found || m == dataflow.ModeSym {
			t.Fatalf("%s\nfull-only site %s#%d is in-slice (mode sym); the sliced run lost a live candidate",
				ctx(), k.Func, k.InstrID)
		}
	}
}

// modeOf looks up the slice mode of a site's defining instruction.
func modeOf(an *dataflow.Analysis, k symex.SiteKey) (dataflow.Mode, bool) {
	fa := an.Func(k.Func)
	if fa == nil {
		return 0, false
	}
	for bi := range fa.F.Blocks {
		for ii := range fa.F.Blocks[bi].Instrs {
			if fa.F.Blocks[bi].Instrs[ii].ID == k.InstrID {
				return fa.Mode(bi, ii), true
			}
		}
	}
	return 0, false
}

// genProgram builds one random valid minc program plus a workload for
// it. Programs mix:
//   - tainted arithmetic chains rooted at input32 reads,
//   - untainted "noise" loops and locals (slice-prunable),
//   - global-array traffic on both tainted and untainted indices,
//   - helper-function calls,
//
// and end in an assertion over a tainted value whose truth depends on
// the drawn workload, so roughly half the runs fail.
func genProgram(rng *rand.Rand) (string, *vm.Workload) {
	ops := []string{"+", "-", "*", "&", "|", "^"}
	op := func() string { return ops[rng.Intn(len(ops))] }
	var sb strings.Builder
	sb.WriteString("int G[32];\n")
	sb.WriteString("func mix(int a, int b) int { return a " + op() + " b + 1; }\n")
	sb.WriteString("func main() int {\n")
	sb.WriteString("\tint x = input32(\"x\");\n")
	sb.WriteString("\tint y = input32(\"y\");\n")
	sb.WriteString("\tint t = x;\n") // tainted accumulator
	sb.WriteString("\tint n = 1;\n") // noise accumulator
	nstmt := 3 + rng.Intn(8)
	for i := 0; i < nstmt; i++ {
		switch rng.Intn(7) {
		case 0:
			fmt.Fprintf(&sb, "\tt = t %s %d;\n", op(), 1+rng.Intn(9))
		case 1:
			fmt.Fprintf(&sb, "\tt = mix(t, %d);\n", rng.Intn(16))
		case 2:
			fmt.Fprintf(&sb, "\tt = t %s y;\n", op())
		case 3: // noise loop: untainted, prunable
			fmt.Fprintf(&sb, "\tfor (int i = 0; i < %d; i = i + 1) { n = n %s i; }\n",
				8+rng.Intn(40), op())
		case 4: // untainted global traffic
			fmt.Fprintf(&sb, "\tG[%d] = n %s %d;\n", rng.Intn(32), op(), rng.Intn(7))
		case 5: // tainted store + reload through a masked index
			fmt.Fprintf(&sb, "\tG[t & 31] = t;\n\tt = G[t & 31] %s 1;\n", op())
		default:
			fmt.Fprintf(&sb, "\tn = mix(n, %d);\n", rng.Intn(8))
		}
	}
	sb.WriteString("\toutput(n);\n")
	// Assertion over the tainted value; the masked comparison keeps
	// the failure probability near a coin flip across workloads.
	fmt.Fprintf(&sb, "\tassert((t & 1) != %d, \"diff\");\n", rng.Intn(2))
	sb.WriteString("\treturn 0;\n}\n")

	w := vm.NewWorkload()
	w.Add("x", uint64(rng.Intn(1000)))
	w.Add("y", uint64(rng.Intn(1000)))
	return sb.String(), w
}
