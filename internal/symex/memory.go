package symex

import (
	"fmt"

	"execrecon/internal/expr"
	"execrecon/internal/ir"
	"execrecon/internal/solver"
	"execrecon/internal/vm"
)

// resolveAddr splits a 64-bit address expression into a concrete
// object and a 32-bit offset expression. Symbolic object parts are
// concretized with a solver query — the per-access solver invocation
// of §3.2 ("ER invokes a constraint solver every time the program
// accesses symbolic memory").
func (e *Engine) resolveAddr(addr *expr.Expr, what string) (uint32, *expr.Expr, error) {
	objE := e.b.Extract(addr, 32, 32)
	offE := e.b.Extract(addr, 0, 32)
	objV, err := e.concretize(objE, what+" object")
	if err != nil {
		return 0, nil, err
	}
	return uint32(objV), offE, nil
}

// checkObject validates that the resolved object may be accessed off
// the failure point.
func (e *Engine) checkObject(obj uint32, what string) (*sobj, error) {
	if obj == 0 || int(obj) >= len(e.objs) {
		return nil, &divergeError{reason: what + ": null/wild object off the failure point"}
	}
	o := e.objs[obj]
	if o.freed {
		return nil, &divergeError{reason: what + ": freed object off the failure point"}
	}
	return o, nil
}

// boundsConstraint records that the access [off, off+nbytes) stayed
// inside the object, as the traced run proves it did. Both the offset
// and the object size may be symbolic.
func (e *Engine) boundsConstraint(o *sobj, off *expr.Expr, nbytes int) error {
	b := e.b
	nb := uint64(nbytes)
	size32 := b.Extract(o.size, 0, 32)
	if size32.IsConst() && off.IsConst() {
		if size32.Val < nb || off.Val > size32.Val-nb {
			return &divergeError{reason: "concrete out-of-bounds access off the failure point"}
		}
		return nil
	}
	// size >= nbytes ∧ off <= size - nbytes.
	e.pc = append(e.pc, b.Uge(size32, b.Const(nb, 32)))
	e.pc = append(e.pc, b.Ule(off, b.Sub(size32, b.Const(nb, 32))))
	return nil
}

// loadMem performs a symbolic load.
func (e *Engine) loadMem(t *sthread, f *sframe, in *ir.Instr) (*expr.Expr, error) {
	addr := e.reg(f, in.A)
	nbytes := in.W.Bytes()
	obj, off, err := e.resolveAddr(addr, "load")
	if err != nil {
		return nil, err
	}
	o, err := e.checkObject(obj, "load")
	if err != nil {
		return nil, err
	}
	if err := e.boundsConstraint(o, off, nbytes); err != nil {
		return nil, err
	}
	return e.up(e.readBytes(o, off, nbytes)), nil
}

// loadMemNoVal performs the address resolution, object check, and
// bounds semantics of a symbolic load — byte for byte the constraints
// and divergence checks of loadMem — without materialising the loaded
// value, because the destination register is statically outside the
// failure slice. It reports whether the access was fully concrete
// (no constraints added, no solver involvement).
func (e *Engine) loadMemNoVal(t *sthread, f *sframe, in *ir.Instr) (bool, error) {
	addr := e.reg(f, in.A)
	nbytes := in.W.Bytes()
	obj, off, err := e.resolveAddr(addr, "load")
	if err != nil {
		return false, err
	}
	o, err := e.checkObject(obj, "load")
	if err != nil {
		return false, err
	}
	if err := e.boundsConstraint(o, off, nbytes); err != nil {
		return false, err
	}
	return addr.IsConst() && o.size.IsConst(), nil
}

// readBytes assembles a little-endian value of nbytes from the
// object's byte array.
func (e *Engine) readBytes(o *sobj, off *expr.Expr, nbytes int) *expr.Expr {
	b := e.b
	v := b.Select(o.arr, b.Add(off, b.Const(uint64(nbytes-1), 32)))
	for i := nbytes - 2; i >= 0; i-- {
		v = b.Concat(v, b.Select(o.arr, b.Add(off, b.Const(uint64(i), 32))))
	}
	return v
}

// storeMem performs a symbolic store.
func (e *Engine) storeMem(t *sthread, f *sframe, in *ir.Instr) error {
	addr := e.reg(f, in.A)
	nbytes := in.W.Bytes()
	obj, off, err := e.resolveAddr(addr, "store")
	if err != nil {
		return err
	}
	o, err := e.checkObject(obj, "store")
	if err != nil {
		return err
	}
	if err := e.boundsConstraint(o, off, nbytes); err != nil {
		return err
	}
	val := e.low(e.reg(f, in.B), in.W)
	b := e.b
	for i := 0; i < nbytes; i++ {
		o.arr = b.Store(o.arr, b.Add(off, b.Const(uint64(i), 32)), b.Extract(val, uint(8*i), 8))
	}
	if !off.IsConst() {
		o.writes++
	}
	return nil
}

// applyFailure encodes the recorded failure condition at the failing
// instruction, completing the reconstruction (§3.2: the failure is
// the end of the trace).
func (e *Engine) applyFailure(t *sthread, f *sframe, in *ir.Instr) error {
	b := e.b
	switch e.failure.Kind {
	case vm.FailAbort:
		// Reaching the abort is the failure.
		return nil
	case vm.FailAssert:
		cond := e.reg(f, in.A)
		if cond.IsConst() {
			if cond.Val != 0 {
				return &divergeError{reason: "assertion cannot fail concretely at failure point"}
			}
			return nil
		}
		e.pc = append(e.pc, b.Eq(cond, b.Const(0, 64)))
		return nil
	case vm.FailDivByZero:
		divisor := e.low(e.reg(f, in.B), in.W)
		if divisor.IsConst() {
			if divisor.Val != 0 {
				return &divergeError{reason: "divisor cannot be zero concretely at failure point"}
			}
			return nil
		}
		e.pc = append(e.pc, b.Eq(divisor, b.Const(0, uint(in.W))))
		return nil
	case vm.FailNullDeref:
		addr := e.reg(f, in.A)
		objE := b.Extract(addr, 32, 32)
		if objE.IsConst() {
			if objE.Val != 0 && objE.Val < uint64(len(e.objs)) {
				return &divergeError{reason: "address cannot be null concretely at failure point"}
			}
			return nil
		}
		null := b.Eq(objE, b.Const(0, 32))
		wild := b.Uge(objE, b.Const(uint64(len(e.objs)), 32))
		e.pc = append(e.pc, b.BoolOr(null, wild))
		return nil
	case vm.FailOutOfBounds:
		if in.Op == ir.OpMalloc {
			// Oversized allocation: the size exceeded the limit.
			size := e.reg(f, in.A)
			if !size.IsConst() {
				e.pc = append(e.pc, b.Ugt(size, b.Const(1<<28, 64)))
			}
			return nil
		}
		// The access must land in a live object but past its end:
		// encode the disjunction over all live objects and let the
		// solver pick one, rather than concretizing to an arbitrary
		// (possibly failure-changing) address.
		addr := e.reg(f, in.A)
		objE := b.Extract(addr, 32, 32)
		offE := b.Extract(addr, 0, 32)
		nbytes := uint64(in.W.Bytes())
		disj := b.False()
		for k := 1; k < len(e.objs); k++ {
			o := e.objs[k]
			if o.freed {
				continue
			}
			isK := b.Eq(objE, b.Const(uint64(k), 32))
			size32 := b.Extract(o.size, 0, 32)
			tooSmall := b.Ult(size32, b.Const(nbytes, 32))
			past := b.Ugt(offE, b.Sub(size32, b.Const(nbytes, 32)))
			isK = b.BoolAnd(isK, b.BoolOr(tooSmall, past))
			disj = b.BoolOr(disj, isK)
		}
		if disj.IsFalse() {
			return &divergeError{reason: "no object admits an out-of-bounds access"}
		}
		e.pc = append(e.pc, disj)
		return nil
	case vm.FailUseAfterFree, vm.FailDoubleFree, vm.FailBadFree:
		// The address must name a freed object.
		addr := e.reg(f, in.A)
		objE := b.Extract(addr, 32, 32)
		disj := b.False()
		for k := 1; k < len(e.objs); k++ {
			if !e.objs[k].freed {
				continue
			}
			disj = b.BoolOr(disj, b.Eq(objE, b.Const(uint64(k), 32)))
		}
		if disj.IsFalse() {
			if e.failure.Kind == vm.FailBadFree {
				return nil // e.g. free of a non-heap object
			}
			return &divergeError{reason: "no freed object at use-after-free failure point"}
		}
		e.pc = append(e.pc, disj)
		return nil
	case vm.FailStackOverflow, vm.FailInputExhausted:
		// Reaching the site suffices.
		return nil
	}
	return fmt.Errorf("symex: unsupported failure kind %v", e.failure.Kind)
}

// finish runs the final solver query over the complete path
// constraint and converts the model into a concrete workload (§3.2:
// "ER invokes a constraint solver to determine concrete program
// inputs that would lead to the failure").
func (e *Engine) finish() error {
	r, m, err := e.solve()
	if err != nil {
		return err
	}
	switch r {
	case solver.ResultUnsat:
		return &divergeError{reason: "final path constraint unsatisfiable"}
	case solver.ResultUnknown:
		return &stallError{reason: "solver timeout on the final query"}
	}
	e.res.Model = m
	tc := vm.NewWorkload()
	for _, rec := range e.inputs {
		tc.Add(rec.Tag, m.Vars[rec.Var])
	}
	e.res.TestCase = tc
	return nil
}
