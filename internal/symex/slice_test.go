package symex_test

import (
	"fmt"
	"strings"
	"testing"

	"execrecon/internal/dataflow"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// runBoth records one failing trace and shepherds it twice — full
// symbolic stepping and slice-pruned stepping — returning both
// results.
func runBoth(t *testing.T, src string, w *vm.Workload, opts symex.Options) (full, sliced *symex.Result) {
	t.Helper()
	mod, tr, res := recordRun(t, src, w, 1)
	if res.Failure == nil {
		t.Fatal("recorded run did not fail")
	}
	full = symex.New(mod, tr, res.Failure, opts).Run("main")
	sopts := opts
	sopts.Slice = dataflow.Analyze(mod)
	sliced = symex.New(mod, tr, res.Failure, sopts).Run("main")
	return full, sliced
}

// pcString renders a result's path constraint deterministically.
func pcString(t *testing.T, r *symex.Result) string {
	t.Helper()
	var sb strings.Builder
	if err := r.DumpConstraints(&sb); err != nil {
		t.Fatalf("dump constraints: %v", err)
	}
	return sb.String()
}

// assertParity checks the slice soundness contract: identical status,
// identical path constraints, and identical recording-site stats.
func assertParity(t *testing.T, full, sliced *symex.Result) {
	t.Helper()
	if full.Status != sliced.Status {
		t.Fatalf("status: full=%v sliced=%v (sliced err: %v)", full.Status, sliced.Status, sliced.Err)
	}
	fpc, spc := pcString(t, full), pcString(t, sliced)
	if fpc != spc {
		t.Fatalf("path constraints differ:\n--- full ---\n%s\n--- sliced ---\n%s", fpc, spc)
	}
	fs := fmt.Sprintf("%v", sitesOf(full))
	ss := fmt.Sprintf("%v", sitesOf(sliced))
	if fs != ss {
		t.Fatalf("site stats differ:\n  full:   %s\n  sliced: %s", fs, ss)
	}
	if full.Stats.Instrs != sliced.Stats.Instrs {
		t.Fatalf("instruction counts differ: %d vs %d", full.Stats.Instrs, sliced.Stats.Instrs)
	}
}

// sitesOf extracts a deterministic view of the per-site dynamic stats.
func sitesOf(r *symex.Result) map[string]int64 {
	out := make(map[string]int64, len(r.Sites))
	for k, st := range r.Sites {
		out[fmt.Sprintf("%s#%d/%d", k.Func, k.InstrID, st.Width)] = st.Count
	}
	return out
}

func TestSliceParityAssert(t *testing.T) {
	src := `
func main() int {
	int x = input32("req");
	int y = x * 3 + 7;
	int noise = 0;
	for (int i = 0; i < 50; i = i + 1) {
		noise = noise + i * i;
	}
	output(noise);
	assert(y != 37, "boom");
	return 0;
}`
	w := vm.NewWorkload()
	w.Add("req", 10)
	full, sliced := runBoth(t, src, w, symex.Options{})
	assertParity(t, full, sliced)
	if full.Status != symex.StatusCompleted {
		t.Fatalf("status %v", full.Status)
	}
	if sliced.Stats.ConcSteps == 0 {
		t.Fatal("slice-pruned run handled no instruction natively")
	}
	if sliced.Stats.SymSteps >= full.Stats.SymSteps {
		t.Fatalf("no pruning: full sym=%d sliced sym=%d",
			full.Stats.SymSteps, sliced.Stats.SymSteps)
	}
	// The untainted accumulator loop must be handled natively.
	if sliced.Stats.ConcSteps < 100 {
		t.Fatalf("ConcSteps = %d, expected the noise loop pruned", sliced.Stats.ConcSteps)
	}
	if sliced.TestCase == nil {
		t.Fatal("no test case")
	}
}

func TestSliceParityMemory(t *testing.T) {
	src := `
int table[64];

func main() int {
	int n = input32("n");
	for (int i = 0; i < 8; i = i + 1) {
		table[i] = i * 2;
	}
	int idx = n % 16;
	int v = table[idx];
	int shadow = table[0] + table[1];
	output(shadow);
	assert(v != 10, "hit");
	return 0;
}`
	w := vm.NewWorkload()
	w.Add("n", 5)
	full, sliced := runBoth(t, src, w, symex.Options{})
	assertParity(t, full, sliced)
}

func TestSliceParityHeapAndCalls(t *testing.T) {
	src := `
func fill(char *p, int n) int {
	for (int i = 0; i < n; i = i + 1) {
		p[i] = i;
	}
	return n;
}

func main() int {
	int n = input32("n");
	char *p = malloc(32);
	int k = fill(p, 16);
	output(k);
	int x = p[n % 32];
	assert(x != 7, "seven");
	free(p);
	return 0;
}`
	w := vm.NewWorkload()
	w.Add("n", 7)
	full, sliced := runBoth(t, src, w, symex.Options{})
	assertParity(t, full, sliced)
}

func TestSliceParityStall(t *testing.T) {
	// A tiny budget stalls both runs at the same query; the stall
	// artifacts (PC, sites) feed key selection and must agree.
	src := `
func main() int {
	int a = input32("a");
	int b = input32("b");
	int acc = 0;
	for (int i = 0; i < 40; i = i + 1) {
		acc = acc + (a % 7) * (b % 5) + i;
	}
	int dead = 0;
	for (int i = 0; i < 40; i = i + 1) {
		dead = dead + i * 3;
	}
	output(dead);
	assert(acc != 1500, "rare");
	return 0;
}`
	w := vm.NewWorkload()
	w.Add("a", 20)
	w.Add("b", 113)
	full, sliced := runBoth(t, src, w, symex.Options{QueryBudget: 300})
	assertParity(t, full, sliced)
}

func TestSliceFullRunsCountSymOnly(t *testing.T) {
	src := `
func main() int {
	int x = input32("x");
	assert(x != 3, "n");
	return 0;
}`
	w := vm.NewWorkload()
	w.Add("x", 3)
	full, sliced := runBoth(t, src, w, symex.Options{})
	if full.Stats.ConcSteps != 0 {
		t.Fatalf("full run ConcSteps = %d, want 0", full.Stats.ConcSteps)
	}
	if full.Stats.SymSteps == 0 || sliced.Stats.SymSteps+sliced.Stats.ConcSteps == 0 {
		t.Fatal("step counters not populated")
	}
}
