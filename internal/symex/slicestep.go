package symex

import (
	"execrecon/internal/dataflow"
	"execrecon/internal/expr"
	"execrecon/internal/ir"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

// This file is the slice-pruned stepping mode (Options.Slice): the
// static backward failure slice (internal/dataflow) proves most traced
// instructions unable to influence any failure condition, so the
// engine executes them natively instead of building expressions.
//
// Soundness contract (argued in DESIGN.md "Static analysis"): the path
// constraint gathered by a pruned run is identical to the full run's.
// The induction invariant is that every register in the slice holds
// the same expression as in the full run; registers handled natively
// hold a concrete value v exactly when the full run holds the constant
// expression for v (the native ALU mirrors the builder's constant
// folds bit for bit, and falls back to the full symbolic path whenever
// an operand turns out not to be constant at runtime).

// cval reads an operand as a native concrete value, reporting whether
// one is available. Mirrors reg(): immediates and never-written
// registers are concrete; interned constant expressions are unwrapped.
func (e *Engine) cval(f *sframe, a ir.Arg) (uint64, bool) {
	if a.K == ir.ArgImm {
		return a.Imm, true
	}
	v := f.regs[a.Reg]
	if v == nil {
		if f.conc[a.Reg] {
			return f.cvals[a.Reg], true
		}
		return 0, true // mirrors reg()'s nil -> const 0
	}
	if v.IsConst() {
		return v.Val, true
	}
	return 0, false
}

// setConc records a natively computed register value.
func (e *Engine) setConc(f *sframe, r int, v uint64) {
	f.regs[r] = nil
	f.conc[r] = true
	f.cvals[r] = v
}

// setSkip leaves a register undefined: the slice proves no constraint
// can ever observe it.
func (e *Engine) setSkip(f *sframe, r int) {
	f.regs[r] = nil
	f.conc[r] = false
}

// fastStep handles one instruction in the pruned mode m. It returns
// handled=false to defer to the full symbolic path — either because
// the instruction is ModeSym, or because a statically untainted
// operand turned out not to be concrete at runtime.
func (e *Engine) fastStep(t *sthread, f *sframe, in *ir.Instr, m dataflow.Mode) (bool, error) {
	switch m {
	case dataflow.ModeSym:
		return false, nil

	case dataflow.ModeSkip:
		e.setSkip(f, in.Dst)
		f.ii++
		e.concSteps++
		return true, nil

	case dataflow.ModeLoadNoVal:
		cheap, err := e.loadMemNoVal(t, f, in)
		if err != nil {
			return true, err
		}
		e.setSkip(f, in.Dst)
		f.ii++
		if cheap {
			e.concSteps++
		} else {
			e.symSteps++
		}
		return true, nil
	}

	// ModeConc.
	w := uint(in.W)
	switch in.Op {
	case ir.OpBr:
		f.blk, f.ii = in.Blk, 0
		e.concSteps++
		return true, nil

	case ir.OpOutput, ir.OpYield:
		f.ii++
		e.concSteps++
		return true, nil

	case ir.OpCondBr:
		// Same event consumption and divergence semantics as the full
		// path; the symbolic sub-path is kept for the (statically
		// untainted, dynamically non-constant) fallback.
		ev, err := e.nextEvent(pt.EvTNT, "TNT (conditional branch)")
		if err != nil {
			return true, err
		}
		if v, ok := e.cval(f, in.A); ok {
			if (v != 0) != ev.Taken {
				return true, &divergeError{reason: "concrete branch contradicts trace"}
			}
			e.concSteps++
		} else {
			c := e.ne0(e.reg(f, in.A))
			if ev.Taken {
				e.pc = append(e.pc, c)
			} else {
				e.pc = append(e.pc, e.b.BoolNot(c))
			}
			e.symSteps++
		}
		if ev.Taken {
			f.blk = in.Blk
		} else {
			f.blk = in.Blk2
		}
		f.ii = 0
		return true, nil

	case ir.OpAssert:
		if v, ok := e.cval(f, in.A); ok {
			if v == 0 {
				return true, &divergeError{reason: "concrete assertion failure off the failure point"}
			}
			e.concSteps++
		} else {
			e.pc = append(e.pc, e.ne0(e.reg(f, in.A)))
			e.symSteps++
		}
		f.ii++
		return true, nil

	case ir.OpConst:
		e.setConc(f, in.Dst, expr.Truncate(in.A.Imm, w))

	case ir.OpFrame:
		e.setConc(f, in.Dst, vm.PackAddr(f.frameObj, uint32(in.A.Imm)))

	case ir.OpGlobal:
		e.setConc(f, in.Dst, vm.PackAddr(vm.GlobalObject(int(in.A.Imm)), 0))

	case ir.OpFuncAddr:
		e.setConc(f, in.Dst, uint64(e.mod.FuncIndex(in.Tag)))

	case ir.OpMov, ir.OpZext, ir.OpTrunc:
		x, ok := e.cval(f, in.A)
		if !ok {
			return false, nil
		}
		e.setConc(f, in.Dst, expr.Truncate(x, w))

	case ir.OpSext:
		x, ok := e.cval(f, in.A)
		if !ok {
			return false, nil
		}
		e.setConc(f, in.Dst, uint64(expr.SignExtendValue(x, w)))

	case ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle:
		x, okx := e.cval(f, in.A)
		y, oky := e.cval(f, in.B)
		if !okx || !oky {
			return false, nil
		}
		e.setConc(f, in.Dst, concBinOp(in.Op, x, y, w))

	default:
		// Division and every stateful op are never assigned ModeConc.
		return false, nil
	}
	f.ii++
	e.concSteps++
	return true, nil
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}

// concBinOp natively evaluates a width-w binary operation over
// full-width operand values, returning the zero-extended w-bit result
// exactly as the full path's up(binOp(op, low(x), low(y))) constant
// folds it.
func concBinOp(op ir.Op, x, y uint64, w uint) uint64 {
	a := expr.Truncate(x, w)
	c := expr.Truncate(y, w)
	switch op {
	case ir.OpAdd:
		return expr.Truncate(a+c, w)
	case ir.OpSub:
		return expr.Truncate(a-c, w)
	case ir.OpMul:
		return expr.Truncate(a*c, w)
	case ir.OpAnd:
		return a & c
	case ir.OpOr:
		return a | c
	case ir.OpXor:
		return a ^ c
	case ir.OpShl:
		if c >= uint64(w) {
			return 0
		}
		return expr.Truncate(a<<c, w)
	case ir.OpLShr:
		if c >= uint64(w) {
			return 0
		}
		return a >> c
	case ir.OpAShr:
		sh := c
		if sh >= uint64(w) {
			sh = uint64(w) - 1
		}
		return expr.Truncate(uint64(expr.SignExtendValue(a, w)>>sh), w)
	case ir.OpEq:
		return b2u(a == c)
	case ir.OpNe:
		return b2u(a != c)
	case ir.OpUlt:
		return b2u(a < c)
	case ir.OpUle:
		return b2u(a <= c)
	case ir.OpSlt:
		return b2u(expr.SignExtendValue(a, w) < expr.SignExtendValue(c, w))
	case ir.OpSle:
		return b2u(expr.SignExtendValue(a, w) <= expr.SignExtendValue(c, w))
	}
	panic("symex: concBinOp on " + op.String())
}
