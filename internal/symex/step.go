package symex

import (
	"fmt"

	"execrecon/internal/expr"
	"execrecon/internal/ir"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

// run is the shepherded main loop: execute the thread announced by
// the last chunk packet, switching whenever the next trace event is a
// chunk boundary, until the trace is consumed and the failure point is
// reached.
func (e *Engine) run(entry string) error {
	fn := e.mod.FuncByName(entry)
	if fn == nil {
		return fmt.Errorf("symex: no function %q", entry)
	}
	t0 := &sthread{id: 0}
	e.threads = append(e.threads, t0)
	e.pushFrame(t0, fn, nil, -1)

	// switchChunk consumes a chunk packet and selects its thread.
	cur := -1
	switchChunk := func() error {
		ev := e.cursor.Next()
		if ev.Tid >= len(e.threads) {
			return &divergeError{reason: fmt.Sprintf("chunk for unknown thread %d", ev.Tid)}
		}
		cur = ev.Tid
		return nil
	}
	if ev := e.cursor.Peek(); ev == nil || ev.Kind != pt.EvChunk {
		return &divergeError{reason: "trace does not begin with a chunk packet"}
	}
	if err := switchChunk(); err != nil {
		return err
	}
	// consumePGD consumes a pause marker that matches the thread's
	// instructions-since-last-event counter, then performs a chunk
	// switch if one follows. The count match locates the preemption
	// precisely even inside event-silent instruction stretches.
	consumePGD := func(t *sthread) error {
		ev := e.cursor.Peek()
		if ev == nil || ev.Kind != pt.EvPGD || ev.Count != t.sinceEvent {
			return nil
		}
		e.cursor.Next()
		if nx := e.cursor.Peek(); nx != nil && nx.Kind == pt.EvChunk {
			return switchChunk()
		}
		return nil
	}
	for {
		t := e.threads[cur]
		if t.state != sRunnable || len(t.stack) == 0 {
			// The current thread paused (blocked or finished): its
			// pause marker and the scheduler's successor follow.
			if len(t.stack) == 0 && t.state != sDone {
				t.state = sDone
				e.wakeJoiners(t.id)
			}
			if ev := e.cursor.Peek(); ev != nil && ev.Kind == pt.EvPGD && ev.Count == t.sinceEvent {
				e.cursor.Next()
			}
			ev := e.cursor.Peek()
			if ev == nil {
				// Trace exhausted with the current thread not
				// runnable: only consistent with scheduler-level
				// failures (deadlock/hang).
				if e.failure != nil && e.failure.Kind == vm.FailDeadlock {
					return e.finish()
				}
				return &divergeError{reason: "trace ended with current thread not runnable"}
			}
			if ev.Kind != pt.EvChunk {
				return &divergeError{reason: "non-chunk event while current thread not runnable"}
			}
			if err := switchChunk(); err != nil {
				return err
			}
			continue
		}
		done, err := e.stepOne(t)
		if err != nil {
			return err
		}
		if done {
			return e.finish()
		}
		if err := consumePGD(t); err != nil {
			return err
		}
		if e.instrs > e.opts.MaxInstrs {
			return fmt.Errorf("symex: instruction budget exhausted (%d)", e.instrs)
		}
	}
}

func (e *Engine) pushFrame(t *sthread, fn *ir.Func, args []*expr.Expr, retDst int) {
	f := &sframe{fn: fn, regs: make([]*expr.Expr, fn.NumRegs), retDst: retDst}
	copy(f.regs, args)
	if e.an != nil {
		if f.fa = e.an.ByFunc(fn); f.fa != nil {
			f.conc = make([]bool, fn.NumRegs)
			f.cvals = make([]uint64, fn.NumRegs)
		}
	}
	if fn.FrameSize > 0 {
		e.objs = append(e.objs, &sobj{
			label: "f:" + fn.Name,
			arr:   e.b.ConstArray(e.b.Const(0, 8), 32),
			size:  e.b.Const(uint64(fn.FrameSize), 64),
		})
		f.frameObj = uint32(len(e.objs) - 1)
	}
	t.stack = append(t.stack, f)
}

func (e *Engine) popFrame(t *sthread) {
	f := t.stack[len(t.stack)-1]
	if f.frameObj != 0 {
		e.objs[f.frameObj].freed = true
	}
	t.stack = t.stack[:len(t.stack)-1]
}

func (e *Engine) wakeJoiners(tid int) {
	for _, o := range e.threads {
		if o.state == sBlockedJoin && o.waitTid == tid {
			o.state = sRunnable
		}
	}
}

func (e *Engine) wakeLockers(mu uint64) {
	for _, o := range e.threads {
		if o.state == sBlockedLock && o.waitMu == mu {
			o.state = sRunnable
		}
	}
}

// reg reads an operand as a 64-bit expression. Registers computed
// natively by the slice-pruned fast path are materialised as constant
// expressions here, on first symbolic read.
func (e *Engine) reg(f *sframe, a ir.Arg) *expr.Expr {
	if a.K == ir.ArgImm {
		return e.b.Const(a.Imm, 64)
	}
	v := f.regs[a.Reg]
	if v == nil {
		if f.conc != nil && f.conc[a.Reg] {
			return e.b.Const(f.cvals[a.Reg], 64)
		}
		return e.b.Const(0, 64)
	}
	return v
}

// low truncates a 64-bit expression to width w.
func (e *Engine) low(v *expr.Expr, w ir.Width) *expr.Expr {
	return e.b.Extract(v, 0, uint(w))
}

// up zero-extends to 64 bits.
func (e *Engine) up(v *expr.Expr) *expr.Expr { return e.b.ZExt(v, 64) }

// ne0 builds the boolean "v != 0".
func (e *Engine) ne0(v *expr.Expr) *expr.Expr {
	return e.b.Ne(v, e.b.Const(0, v.Width))
}

func (e *Engine) nextEvent(kind pt.EventKind, what string) (*pt.Event, error) {
	ev := e.cursor.Next()
	if ev == nil {
		return nil, &divergeError{reason: "trace exhausted awaiting " + what}
	}
	if ev.Kind != kind {
		return nil, &divergeError{reason: fmt.Sprintf("expected %s event, got kind %d", what, ev.Kind)}
	}
	return ev, nil
}

// atFailurePoint reports whether instruction in of fn is the recorded
// failure site and the trace has been fully consumed.
func (e *Engine) atFailurePoint(fn *ir.Func, in *ir.Instr) bool {
	if e.failure == nil || e.cursor.Remaining() > 0 {
		return false
	}
	return e.failure.Func == fn.Name && e.failure.InstrID == in.ID
}

// stepOne executes one instruction of thread t. It returns done=true
// when the failure point has been reached and encoded.
func (e *Engine) stepOne(t *sthread) (bool, error) {
	f := t.stack[len(t.stack)-1]
	in := &f.fn.Blocks[f.blk].Instrs[f.ii]
	e.instrs++
	e.recordProgress()

	if e.atFailurePoint(f.fn, in) {
		return true, e.applyFailure(t, f, in)
	}

	// Mirror the VM's pause-marker counter.
	t.sinceEvent++
	switch in.Op {
	case ir.OpCondBr, ir.OpRet, ir.OpICall, ir.OpPtWrite:
		defer func() { t.sinceEvent = 0 }()
	}

	// Slice-pruned fast path: instructions statically proved outside
	// the backward failure slice execute natively or are skipped.
	if f.fa != nil {
		if handled, err := e.fastStep(t, f, in, f.fa.Mode(f.blk, f.ii)); handled {
			return false, err
		}
	}
	e.symSteps++

	b := e.b
	w := in.W
	adv := true
	switch in.Op {
	case ir.OpConst:
		f.regs[in.Dst] = b.Const(expr.Truncate(in.A.Imm, uint(w)), 64)
	case ir.OpMov, ir.OpZext, ir.OpTrunc:
		v := e.up(e.low(e.reg(f, in.A), w))
		f.regs[in.Dst] = v
		e.defineSite(f.fn, in, v, w)
	case ir.OpSext:
		v := b.SExt(e.low(e.reg(f, in.A), w), 64)
		f.regs[in.Dst] = v
		e.defineSite(f.fn, in, v, ir.W64)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle:
		va := e.low(e.reg(f, in.A), w)
		vb := e.low(e.reg(f, in.B), w)
		if in.Op == ir.OpUDiv || in.Op == ir.OpURem || in.Op == ir.OpSDiv || in.Op == ir.OpSRem {
			// The traced run did not fail here, so the divisor was
			// nonzero.
			if vb.IsConst() {
				if vb.Val == 0 {
					return false, &divergeError{reason: "constant zero divisor off the failure point"}
				}
			} else {
				e.pc = append(e.pc, b.Ne(vb, b.Const(0, uint(w))))
			}
		}
		v := e.binOp(in.Op, va, vb)
		f.regs[in.Dst] = v
		e.defineSite(f.fn, in, v, w)
	case ir.OpLoad:
		v, err := e.loadMem(t, f, in)
		if err != nil {
			return false, err
		}
		f.regs[in.Dst] = v
		e.defineSite(f.fn, in, v, w)
	case ir.OpStore:
		if err := e.storeMem(t, f, in); err != nil {
			return false, err
		}
	case ir.OpFrame:
		f.regs[in.Dst] = b.Const(vm.PackAddr(f.frameObj, uint32(in.A.Imm)), 64)
	case ir.OpGlobal:
		f.regs[in.Dst] = b.Const(vm.PackAddr(vm.GlobalObject(int(in.A.Imm)), 0), 64)
	case ir.OpMalloc:
		// The size stays symbolic; the traced run proves it passed
		// the allocator's limit check.
		size := e.reg(f, in.A)
		if size.IsConst() {
			if size.Val > 1<<28 {
				return false, &divergeError{reason: "oversized allocation off the failure point"}
			}
		} else {
			e.pc = append(e.pc, b.Ule(size, b.Const(1<<28, 64)))
		}
		e.objs = append(e.objs, &sobj{
			label: fmt.Sprintf("heap#%d", len(e.objs)),
			arr:   b.ConstArray(b.Const(0, 8), 32),
			size:  size,
			heap:  true,
		})
		f.regs[in.Dst] = b.Const(vm.PackAddr(uint32(len(e.objs)-1), 0), 64)
	case ir.OpFree:
		addr, err := e.concretize(e.reg(f, in.A), "freed address")
		if err != nil {
			return false, err
		}
		obj, off := vm.SplitAddr(addr)
		if obj == 0 || int(obj) >= len(e.objs) || off != 0 || !e.objs[obj].heap || e.objs[obj].freed {
			return false, &divergeError{reason: "invalid free off the failure point"}
		}
		e.objs[obj].freed = true
	case ir.OpFuncAddr:
		f.regs[in.Dst] = b.Const(uint64(e.mod.FuncIndex(in.Tag)), 64)
	case ir.OpBr:
		f.blk, f.ii = in.Blk, 0
		adv = false
	case ir.OpCondBr:
		ev, err := e.nextEvent(pt.EvTNT, "TNT (conditional branch)")
		if err != nil {
			return false, err
		}
		cond := e.reg(f, in.A)
		if cond.IsConst() {
			if (cond.Val != 0) != ev.Taken {
				return false, &divergeError{reason: "concrete branch contradicts trace"}
			}
		} else {
			c := e.ne0(cond)
			if ev.Taken {
				e.pc = append(e.pc, c)
			} else {
				e.pc = append(e.pc, b.BoolNot(c))
			}
		}
		if ev.Taken {
			f.blk = in.Blk
		} else {
			f.blk = in.Blk2
		}
		f.ii = 0
		adv = false
	case ir.OpCall:
		callee := e.mod.FuncByName(in.Tag)
		args := make([]*expr.Expr, len(in.Args))
		for i, a := range in.Args {
			args[i] = e.reg(f, a)
		}
		f.ii++ // return lands after the call
		e.pushFrame(t, callee, args, in.Dst)
		return false, nil
	case ir.OpICall:
		ev, err := e.nextEvent(pt.EvTIP, "TIP (indirect call)")
		if err != nil {
			return false, err
		}
		fp := e.reg(f, in.A)
		if fp.IsConst() {
			if fp.Val != ev.Target {
				return false, &divergeError{reason: "concrete indirect target contradicts trace"}
			}
		} else {
			e.pc = append(e.pc, b.Eq(fp, b.Const(ev.Target, 64)))
		}
		if ev.Target >= uint64(len(e.mod.Funcs)) {
			return false, &divergeError{reason: "indirect target out of range off the failure point"}
		}
		callee := e.mod.Funcs[ev.Target]
		args := make([]*expr.Expr, len(in.Args))
		for i, a := range in.Args {
			args[i] = e.reg(f, a)
		}
		f.ii++
		e.pushFrame(t, callee, args, in.Dst)
		return false, nil
	case ir.OpRet:
		if _, err := e.nextEvent(pt.EvTNT, "TNT (compressed ret)"); err != nil {
			return false, err
		}
		rv := e.reg(f, in.A)
		e.popFrame(t)
		if len(t.stack) == 0 {
			t.state = sDone
			e.wakeJoiners(t.id)
			return false, nil
		}
		cf := t.stack[len(t.stack)-1]
		if f.retDst >= 0 {
			cf.regs[f.retDst] = rv
		}
		return false, nil
	case ir.OpInput:
		e.inputSeq++
		name := fmt.Sprintf("in!%s!%d", in.Tag, e.inputSeq)
		v := e.b.Var(name, uint(w))
		e.inputs = append(e.inputs, InputRecord{Tag: in.Tag, Width: w, Var: name})
		f.regs[in.Dst] = e.up(v)
		e.defineSite(f.fn, in, e.up(v), w)
	case ir.OpAbort:
		return false, &divergeError{reason: "abort off the failure point"}
	case ir.OpAssert:
		cond := e.reg(f, in.A)
		if cond.IsConst() {
			if cond.Val == 0 {
				return false, &divergeError{reason: "concrete assertion failure off the failure point"}
			}
		} else {
			e.pc = append(e.pc, e.ne0(cond))
		}
	case ir.OpOutput:
		// Observable output adds no constraints.
	case ir.OpPtWrite:
		ev, err := e.nextEvent(pt.EvPTW, "PTW (recorded data value)")
		if err != nil {
			return false, err
		}
		if ev.Key != in.ID {
			return false, &divergeError{reason: fmt.Sprintf("PTW key %d at ptwrite %d", ev.Key, in.ID)}
		}
		cur := e.low(e.reg(f, in.A), w)
		cv := e.b.Const(ev.Value, uint(w))
		if cur.IsConst() {
			if cur.Val != cv.Val {
				return false, &divergeError{reason: "recorded value contradicts concrete state"}
			}
		} else {
			// Bind the symbolic value to the recorded one and
			// concretize the register — this is how recorded key
			// data values simplify all downstream constraints.
			e.pc = append(e.pc, e.b.Eq(cur, cv))
			if in.A.K == ir.ArgReg {
				f.regs[in.A.Reg] = e.b.Const(ev.Value, 64)
			}
		}
	case ir.OpSpawn:
		callee := e.mod.FuncByName(in.Tag)
		nt := &sthread{id: len(e.threads)}
		e.threads = append(e.threads, nt)
		args := make([]*expr.Expr, len(in.Args))
		for i, a := range in.Args {
			args[i] = e.reg(f, a)
		}
		e.pushFrame(nt, callee, args, -1)
		f.regs[in.Dst] = e.b.Const(uint64(nt.id), 64)
	case ir.OpJoin:
		tid, err := e.concretize(e.reg(f, in.A), "joined thread id")
		if err != nil {
			return false, err
		}
		if tid >= uint64(len(e.threads)) {
			return false, &divergeError{reason: "join of unknown thread"}
		}
		if e.threads[tid].state != sDone {
			t.state = sBlockedJoin
			t.waitTid = int(tid)
			return false, nil // do not advance; re-executed on wake
		}
	case ir.OpLock:
		mu, err := e.concretize(e.reg(f, in.A), "mutex id")
		if err != nil {
			return false, err
		}
		owner, held := e.mus[mu]
		if held && owner >= 0 {
			if owner == t.id {
				return false, &divergeError{reason: "recursive lock off the failure point"}
			}
			t.state = sBlockedLock
			t.waitMu = mu
			return false, nil
		}
		e.mus[mu] = t.id
	case ir.OpUnlock:
		mu, err := e.concretize(e.reg(f, in.A), "mutex id")
		if err != nil {
			return false, err
		}
		if owner, held := e.mus[mu]; !held || owner != t.id {
			return false, &divergeError{reason: "unlock of mutex not held"}
		}
		e.mus[mu] = -1
		e.wakeLockers(mu)
	case ir.OpYield:
		// Scheduling hint only.
	default:
		return false, fmt.Errorf("symex: unsupported op %s", in.Op)
	}
	if adv {
		f.ii++
	}
	return false, nil
}

// binOp builds the 64-bit result expression of a width-w operation.
func (e *Engine) binOp(op ir.Op, a, b2 *expr.Expr) *expr.Expr {
	b := e.b
	var r *expr.Expr
	switch op {
	case ir.OpAdd:
		r = b.Add(a, b2)
	case ir.OpSub:
		r = b.Sub(a, b2)
	case ir.OpMul:
		r = b.Mul(a, b2)
	case ir.OpUDiv:
		r = b.UDiv(a, b2)
	case ir.OpURem:
		r = b.URem(a, b2)
	case ir.OpSDiv:
		r = b.SDiv(a, b2)
	case ir.OpSRem:
		r = b.SRem(a, b2)
	case ir.OpAnd:
		r = b.And(a, b2)
	case ir.OpOr:
		r = b.Or(a, b2)
	case ir.OpXor:
		r = b.Xor(a, b2)
	case ir.OpShl:
		r = b.Shl(a, b2)
	case ir.OpLShr:
		r = b.LShr(a, b2)
	case ir.OpAShr:
		r = b.AShr(a, b2)
	case ir.OpEq:
		r = b.Eq(a, b2)
	case ir.OpNe:
		r = b.Ne(a, b2)
	case ir.OpUlt:
		r = b.Ult(a, b2)
	case ir.OpUle:
		r = b.Ule(a, b2)
	case ir.OpSlt:
		r = b.Slt(a, b2)
	case ir.OpSle:
		r = b.Sle(a, b2)
	default:
		panic("symex: not a binary op: " + op.String())
	}
	return e.up(r)
}
