// Package symex implements shepherded symbolic execution (§3.2): it
// re-executes a program symbolically along the control-flow trace
// recorded in production, so no path search ever happens. Program
// inputs become free bitvector variables; every recorded branch
// outcome, indirect-call target, and ptwrite data value adds a
// constraint binding those variables; and memory is modelled at
// object granularity with byte arrays, invoking the constraint solver
// whenever a symbolic address must be resolved to concrete objects —
// exactly the points where the paper's stalls arise. When the trace is
// fully consumed the engine applies the failure condition itself
// (assertion negation, out-of-bounds offset, NULL object, zero
// divisor, …) and asks the solver for a model, which it converts into
// a concrete, replayable test case.
package symex

import (
	"io"
	"time"

	"execrecon/internal/dataflow"
	"execrecon/internal/expr"
	"execrecon/internal/ir"
	"execrecon/internal/pt"
	"execrecon/internal/solver"
	"execrecon/internal/telemetry"
	"execrecon/internal/vm"
)

// Status is the outcome of a shepherded run.
type Status int

// Shepherded execution outcomes.
const (
	// StatusCompleted: the failure point was reached and a
	// satisfying test case was generated.
	StatusCompleted Status = iota
	// StatusStalled: a solver query exhausted its budget — the
	// "solver timeout" of §4. The path constraint gathered so far
	// is available for key data value selection.
	StatusStalled
	// StatusDiverged: the symbolic execution contradicted the trace
	// (internal error or corrupted trace).
	StatusDiverged
	// StatusError: an unrecoverable engine error.
	StatusError
)

func (s Status) String() string {
	switch s {
	case StatusCompleted:
		return "completed"
	case StatusStalled:
		return "stalled"
	case StatusDiverged:
		return "diverged"
	default:
		return "error"
	}
}

// Options configures the engine.
type Options struct {
	// QueryBudget bounds each solver query in abstract steps; an
	// exhausted query is a stall. Zero means unlimited.
	QueryBudget int64
	// QueryTimeout optionally bounds each query in wall time.
	QueryTimeout time.Duration
	// MaxInstrs bounds symbolic execution length (default 100M).
	MaxInstrs int64
	// ProgressEvery records a progress sample each N instructions
	// (0 disables); used by the Fig 5 experiment.
	ProgressEvery int64
	// Solver optionally supplies a persistent solver session (an
	// *solver.Incremental shared across a pipeline's iterations). When
	// nil the engine creates a fresh one-shot solver over its own
	// builder, exactly as before.
	Solver solver.Backend
	// Stop, when set, cancels in-flight solver queries promptly: the
	// flag is observed on every budget spend, not just at the deadline
	// cadence. Pipelines wire their abort flag here. Ignored when
	// Solver is injected (configure the session's own Options.Stop).
	Stop *solver.Cancel
	// Portfolio, when Workers > 1, races each query's CDCL descent
	// across seeded workers. Ignored when Solver is injected.
	Portfolio solver.PortfolioOptions
	// Absint enables the abstract-interpretation pre-discharge and
	// width-narrowed blasting in the engine's own one-shot solver.
	// Ignored when Solver is injected (configure the session's own
	// Options.Absint).
	Absint bool
	// Slice optionally supplies the static backward failure slice of
	// the module (dataflow.Analyze). When set, instructions statically
	// proved unable to influence any failure condition are executed
	// concretely or skipped instead of symbolically; the gathered path
	// constraint is identical to a full run's. Nil means full symbolic
	// stepping.
	Slice *dataflow.Analysis
	// Metrics, when set, receives the engine's dispatch and solver
	// counters (er_symex_*) at the end of each Run — the RunStats
	// struct stays the per-run view, the registry the fleet-wide
	// accumulation. The engine touches the registry exactly once per
	// run, so the hot stepping loop is unaffected.
	Metrics *telemetry.Registry
}

// SiteKey identifies an instruction (a potential recording site).
type SiteKey struct {
	Func    string
	InstrID int32
}

// SiteStats carries per-site dynamic information for cost estimation.
type SiteStats struct {
	Count int64    // dynamic executions observed in the trace
	Width ir.Width // value width recorded at this site
	Line  int32
}

// ObjectState describes a memory object's final symbolic array, used
// by constraint-graph analysis to find write chains and object sizes.
type ObjectState struct {
	Label string
	Size  uint64
	Arr   *expr.Expr
	// Writes counts symbolic-index stores applied to the object.
	Writes int
}

// InputRecord describes one consumed program input, in consumption
// order. The generated test case assigns one value per record.
type InputRecord struct {
	Tag   string
	Width ir.Width
	Var   string
}

// ProgressPoint samples symbolic execution progress over wall time.
type ProgressPoint struct {
	Instrs  int64
	Elapsed time.Duration
}

// RunStats summarizes engine work.
type RunStats struct {
	Instrs int64
	// SymSteps counts instructions executed through the full symbolic
	// dispatch; ConcSteps counts instructions handled by the
	// slice-pruned fast path (Options.Slice). Without a slice every
	// instruction is a SymStep.
	SymSteps      int64
	ConcSteps     int64
	SolverQueries int64
	SolverSteps   int64
	// SolverTime is the cumulative wall time spent inside solver
	// queries — the quantity the solvecache experiment compares
	// between fresh-per-query and incremental-session solving.
	SolverTime time.Duration
	// SATVars/SATClauses accumulate the CNF size reported by every
	// query (for one-shot solving, the total blasted volume — the
	// quantity the absint experiment compares with narrowing on/off).
	SATVars    int64
	SATClauses int64
	// AbsintDischarged counts queries the abstract pre-discharge pass
	// decided without CDCL; AbsintBits variable bits pinned during
	// blasting from known-bits facts.
	AbsintDischarged int64
	AbsintBits       int64
	Elapsed          time.Duration
	PCSize           int
	GraphNodes       int
}

// Result is the outcome of a shepherded symbolic execution.
type Result struct {
	Status      Status
	StallReason string
	Err         error

	// PathConstraint is the constraint set gathered up to
	// completion or the stall point.
	PathConstraint []*expr.Expr
	// Builder interns all expressions in PathConstraint.
	Builder *expr.Builder
	// TestCase is the generated failure-reproducing workload
	// (StatusCompleted only).
	TestCase *vm.Workload
	Model    *expr.Assignment
	Inputs   []InputRecord
	Objects  []ObjectState
	// ExprSites maps expression node IDs to the instruction that
	// defined them, and Sites carries those sites' dynamic stats —
	// the raw material of key data value selection.
	ExprSites map[uint64]SiteKey
	Sites     map[SiteKey]*SiteStats
	// StallExpr is the expression whose concretization query
	// exhausted the solver budget, when the stall happened at a
	// symbolic memory access rather than at the final query.
	StallExpr *expr.Expr
	Progress  []ProgressPoint
	Stats     RunStats
}

// DumpConstraints writes the gathered path constraint as an SMT-LIB 2
// script, for cross-checking with external solvers or inspecting a
// stall.
func (r *Result) DumpConstraints(w io.Writer) error {
	return expr.WriteSMTLIB(w, r.PathConstraint)
}

// Engine shepherds one module along one trace. Engines are
// single-use.
type Engine struct {
	mod  *ir.Module
	opts Options
	an   *dataflow.Analysis

	b   *expr.Builder
	sol solver.Backend

	threads []*sthread
	objs    []*sobj
	mus     map[uint64]int
	cursor  pt.EventSource
	failure *vm.Failure

	pc        []*expr.Expr
	inputs    []InputRecord
	inputSeq  int
	exprSites map[uint64]SiteKey
	sites     map[SiteKey]*SiteStats

	instrs        int64
	symSteps      int64
	concSteps     int64
	satVars       int64
	satClauses    int64
	absDischarged int64
	absBits       int64
	queries       int64
	qsteps        int64
	qtime         time.Duration
	start         time.Time
	progress      []ProgressPoint
	stallExpr     *expr.Expr

	res *Result
}

type sthreadState uint8

const (
	sRunnable sthreadState = iota
	sBlockedLock
	sBlockedJoin
	sDone
)

type sthread struct {
	id      int
	stack   []*sframe
	state   sthreadState
	waitMu  uint64
	waitTid int
	// sinceEvent mirrors the VM's instructions-since-last-event
	// counter used by PGD pause markers.
	sinceEvent uint64
}

type sframe struct {
	fn       *ir.Func
	regs     []*expr.Expr
	blk, ii  int
	frameObj uint32
	retDst   int

	// Slice-pruned stepping state (Options.Slice only). fa is the
	// function's static analysis; conc/cvals hold registers computed
	// natively by the fast path — regs[r] == nil && conc[r] means the
	// register's value is the constant cvals[r], materialised as an
	// expression only when a symbolic-path instruction reads it.
	fa    *dataflow.FuncAnalysis
	conc  []bool
	cvals []uint64
}

type sobj struct {
	label string
	arr   *expr.Expr
	// size is the object's byte size as a 64-bit expression; heap
	// objects allocated with input-dependent sizes stay symbolic,
	// avoiding premature concretization that could contradict later
	// trace constraints.
	size   *expr.Expr
	freed  bool
	heap   bool
	writes int // symbolic-index stores
}

// sizeHint returns a concrete magnitude for chain ranking: the exact
// size when known, else a large placeholder.
func (o *sobj) sizeHint() uint64 {
	if o.size != nil && o.size.IsConst() {
		return o.size.Val
	}
	return 1 << 16
}

// New prepares an engine to reconstruct the given failure from a
// fully decoded in-memory trace.
func New(mod *ir.Module, trace *pt.Trace, failure *vm.Failure, opts Options) *Engine {
	return NewFromEvents(mod, pt.NewCursor(trace), failure, opts)
}

// NewFromEvents prepares an engine that shepherds execution along the
// events delivered by src — either an in-memory pt.Cursor or a
// streaming source such as a pt.StreamDecoder over an archived trace
// (internal/tracestore), which never materializes the full event
// slice. The engine reads each event's fields before advancing the
// source again, so streaming sources' per-packet event buffers are
// safe.
func NewFromEvents(mod *ir.Module, src pt.EventSource, failure *vm.Failure, opts Options) *Engine {
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 100_000_000
	}
	b := expr.NewBuilder()
	sol := opts.Solver
	if sol == nil {
		sol = solver.New(b, solver.Options{
			MaxSteps:  opts.QueryBudget,
			Timeout:   opts.QueryTimeout,
			Validate:  false,
			Stop:      opts.Stop,
			Portfolio: opts.Portfolio,
			Absint:    opts.Absint,
		})
	}
	e := &Engine{
		mod:       mod,
		opts:      opts,
		an:        opts.Slice,
		b:         b,
		sol:       sol,
		mus:       make(map[uint64]int),
		cursor:    src,
		failure:   failure,
		exprSites: make(map[uint64]SiteKey),
		sites:     make(map[SiteKey]*SiteStats),
	}
	// Object 0 is NULL.
	e.objs = append(e.objs, &sobj{label: "<null>"})
	zero8 := b.Const(0, 8)
	for _, g := range mod.Globals {
		arr := b.ConstArray(zero8, 32)
		for i, bv := range g.Init {
			if bv != 0 {
				arr = b.Store(arr, b.Const(uint64(i), 32), b.Const(uint64(bv), 8))
			}
		}
		e.objs = append(e.objs, &sobj{label: "g:" + g.Name, arr: arr, size: b.Const(uint64(g.Size), 64)})
	}
	return e
}

// stallError signals a solver budget exhaustion inside the step
// functions.
type stallError struct{ reason string }

func (s *stallError) Error() string { return "symex stall: " + s.reason }

// divergeError signals trace mismatch.
type divergeError struct{ reason string }

func (d *divergeError) Error() string { return "symex divergence: " + d.reason }

// Run performs the shepherded execution.
func (e *Engine) Run(entry string) *Result {
	e.start = time.Now()
	res := &Result{
		Builder:   e.b,
		ExprSites: e.exprSites,
		Sites:     e.sites,
	}
	e.res = res
	err := e.run(entry)
	res.StallExpr = e.stallExpr
	res.PathConstraint = e.pc
	res.Inputs = e.inputs
	res.Progress = e.progress
	for _, o := range e.objs[1:] {
		res.Objects = append(res.Objects, ObjectState{
			Label: o.label, Size: o.sizeHint(), Arr: o.arr, Writes: o.writes,
		})
	}
	res.Stats = RunStats{
		Instrs:           e.instrs,
		SymSteps:         e.symSteps,
		ConcSteps:        e.concSteps,
		SolverQueries:    e.queries,
		SolverSteps:      e.qsteps,
		SolverTime:       e.qtime,
		SATVars:          e.satVars,
		SATClauses:       e.satClauses,
		AbsintDischarged: e.absDischarged,
		AbsintBits:       e.absBits,
		Elapsed:          time.Since(e.start),
		PCSize:           len(e.pc),
		GraphNodes:       e.b.NumNodes(),
	}
	switch x := err.(type) {
	case nil:
		res.Status = StatusCompleted
	case *stallError:
		res.Status = StatusStalled
		res.StallReason = x.reason
	case *divergeError:
		res.Status = StatusDiverged
		res.Err = x
	default:
		res.Status = StatusError
		res.Err = err
	}
	e.reportMetrics(res)
	return res
}

// reportMetrics accumulates the run's counters into the shared
// registry (no-op without Options.Metrics).
func (e *Engine) reportMetrics(res *Result) {
	reg := e.opts.Metrics
	if reg == nil {
		return
	}
	reg.Counter("er_symex_runs_total",
		"shepherded symbolic executions by outcome",
		telemetry.L("status", res.Status.String())).Inc()
	reg.Counter("er_symex_instrs_total",
		"instructions shepherded").Add(res.Stats.Instrs)
	reg.Counter("er_symex_sym_steps_total",
		"instructions executed through the full symbolic dispatch").Add(res.Stats.SymSteps)
	reg.Counter("er_symex_conc_steps_total",
		"instructions executed natively by the slice-pruned fast path").Add(res.Stats.ConcSteps)
	reg.Counter("er_symex_solver_queries_total",
		"solver queries issued").Add(res.Stats.SolverQueries)
	reg.Counter("er_symex_solver_steps_total",
		"abstract solver steps spent").Add(res.Stats.SolverSteps)
	reg.Counter("er_absint_oneshot_discharged_total",
		"engine queries decided by the abstract pre-discharge pass").Add(res.Stats.AbsintDischarged)
	reg.Counter("er_absint_oneshot_bits_total",
		"variable bits pinned during blasting from known-bits facts").Add(res.Stats.AbsintBits)
	reg.Histogram("er_symex_run_seconds",
		"shepherded execution wall time per run", nil).ObserveDuration(res.Stats.Elapsed)
	reg.Histogram("er_symex_solver_seconds",
		"cumulative solver wall time per run", nil).ObserveDuration(res.Stats.SolverTime)
}

// solve runs a solver query over the current path constraint plus
// extras, accounting budget and stalls.
func (e *Engine) solve(extra ...*expr.Expr) (solver.Result, *expr.Assignment, error) {
	e.queries++
	cs := e.pc
	if len(extra) > 0 {
		cs = append(append([]*expr.Expr{}, e.pc...), extra...)
	}
	r, m, err := e.sol.Solve(cs)
	st := e.sol.LastStats()
	e.qsteps += st.Steps
	e.qtime += st.Elapsed
	e.satVars += int64(st.SATVars)
	e.satClauses += int64(st.SATClauses)
	if st.AbsintDischarged {
		e.absDischarged++
	}
	e.absBits += int64(st.AbsintBits)
	return r, m, err
}

// concretize returns a concrete value for v consistent with the path
// constraint, adding the binding constraint. Constant expressions are
// free.
func (e *Engine) concretize(v *expr.Expr, what string) (uint64, error) {
	if v.IsConst() {
		return v.Val, nil
	}
	r, m, err := e.solve()
	if err != nil {
		return 0, err
	}
	switch r {
	case solver.ResultSat:
		val, err := m.Eval(v)
		if err != nil {
			return 0, err
		}
		e.pc = append(e.pc, e.b.Eq(v, e.b.Const(val, v.Width)))
		return val, nil
	case solver.ResultUnsat:
		return 0, &divergeError{reason: "path constraint unsatisfiable at " + what}
	default:
		e.stallExpr = v
		return 0, &stallError{reason: "solver timeout concretizing " + what}
	}
}

func (e *Engine) recordProgress() {
	if e.opts.ProgressEvery > 0 && e.instrs%e.opts.ProgressEvery == 0 {
		e.progress = append(e.progress, ProgressPoint{Instrs: e.instrs, Elapsed: time.Since(e.start)})
	}
}

// defineSite remembers that expression v was produced by instruction
// in of function fn, and bumps the site's dynamic count.
func (e *Engine) defineSite(fn *ir.Func, in *ir.Instr, v *expr.Expr, w ir.Width) {
	if v.IsConst() {
		return
	}
	key := SiteKey{Func: fn.Name, InstrID: in.ID}
	st := e.sites[key]
	if st == nil {
		st = &SiteStats{Width: w, Line: in.Line}
		e.sites[key] = st
	}
	st.Count++
	if _, ok := e.exprSites[v.ID()]; !ok {
		e.exprSites[v.ID()] = key
	}
	// The narrow value inside a zero-extension is recordable at the
	// same site (the ptwrite captures the register's low bits), so
	// key selection may pick either form.
	if v.Kind == expr.KZExt {
		if inner := v.Args[0]; !inner.IsConst() {
			if _, ok := e.exprSites[inner.ID()]; !ok {
				e.exprSites[inner.ID()] = key
			}
		}
	}
}
