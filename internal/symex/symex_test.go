package symex_test

import (
	"strings"
	"testing"
	"time"

	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/pt"
	"execrecon/internal/symex"
	"execrecon/internal/vm"
)

// recordRun compiles src, runs it with the workload under tracing,
// and returns the module, the decoded trace, and the VM result.
func recordRun(t *testing.T, src string, w *vm.Workload, seed int64) (*ir.Module, *pt.Trace, *vm.Result) {
	t.Helper()
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ring := pt.NewRing(1 << 24)
	enc := pt.NewEncoder(ring)
	res := vm.New(mod, vm.Config{Input: w, Tracer: enc, Seed: seed}).Run("main")
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return mod, tr, res
}

// reconstruct runs shepherded symbolic execution and, on completion,
// verifies the generated test case reproduces the same failure
// signature in a fresh concrete run.
func reconstruct(t *testing.T, src string, w *vm.Workload, opts symex.Options) *symex.Result {
	t.Helper()
	mod, tr, res := recordRun(t, src, w, 1)
	if res.Failure == nil {
		t.Fatal("recorded run did not fail")
	}
	sres := symex.New(mod, tr, res.Failure, opts).Run("main")
	if sres.Status == symex.StatusCompleted {
		rerun := vm.New(mod, vm.Config{Input: sres.TestCase.Clone(), Seed: 1}).Run("main")
		if rerun.Failure == nil {
			t.Fatalf("generated test case does not fail (inputs %v)", sres.TestCase.Streams)
		}
		if !rerun.Failure.SameSignature(res.Failure) {
			t.Fatalf("generated test case fails differently:\n  original: %v\n  replayed: %v",
				res.Failure, rerun.Failure)
		}
	}
	return sres
}

func TestReconstructAssert(t *testing.T) {
	src := `
func main() int {
	int x = input32("req");
	int y = input32("req");
	int s = x + y;
	assert(s != 70, "sum is 70");
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("req", 30, 40), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	tc := sres.TestCase.Streams["req"]
	if len(tc) != 2 || uint32(tc[0])+uint32(tc[1]) != 70 {
		t.Errorf("generated inputs %v do not sum to 70", tc)
	}
}

func TestReconstructBranchy(t *testing.T) {
	src := `
func classify(int v) int {
	if (v < 10) { return 1; }
	if (v < 100) { return 2; }
	return 3;
}
func main() int {
	int a = input32("a");
	int b = input32("b");
	int c = classify(a) * 10 + classify(b);
	if (c == 23) { abort("bad combination"); }
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("a", 50).Add("b", 1000), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	a := uint32(sres.TestCase.Streams["a"][0])
	b := uint32(sres.TestCase.Streams["b"][0])
	if !(int32(a) >= 10 && int32(a) < 100) || int32(b) < 100 {
		t.Errorf("generated a=%d b=%d do not satisfy the path", a, b)
	}
}

func TestReconstructLoopAccumulator(t *testing.T) {
	src := `
func main() int {
	int n = input32("n");
	if (n < 0 || n > 20) { return 0; }
	int acc = 0;
	for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
	assert(acc != 45, "triangular 45");
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("n", 10), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	// The loop ran exactly 10 times in the trace, so n must be 10.
	if got := sres.TestCase.Streams["n"][0]; uint32(got) != 10 {
		t.Errorf("n = %d, want 10", got)
	}
}

func TestReconstructMemoryWrite(t *testing.T) {
	src := `
int tbl[64];
func main() int {
	int i = input32("i");
	if (i < 0 || i >= 64) { return 0; }
	tbl[i] = 7;
	if (tbl[13] == 7) { abort("slot 13 written"); }
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("i", 13), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	if got := sres.TestCase.Streams["i"][0]; uint32(got) != 13 {
		t.Errorf("i = %d, want 13", got)
	}
}

func TestReconstructOutOfBounds(t *testing.T) {
	src := `
int buf[16];
func main() int {
	int i = input32("i");
	if (i > 100) { return 0; }
	buf[i] = 1;
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("i", 40), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	i := uint32(sres.TestCase.Streams["i"][0])
	if i < 16 || i > 100 {
		t.Errorf("generated i=%d is not an in-path out-of-bounds index", i)
	}
}

func TestReconstructDivByZero(t *testing.T) {
	src := `
func main() int {
	int d = input32("d");
	int q = 100 / (d - 7);
	output(q);
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("d", 7), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	if got := uint32(sres.TestCase.Streams["d"][0]); got != 7 {
		t.Errorf("d = %d, want 7", got)
	}
}

func TestReconstructNullDeref(t *testing.T) {
	src := `
int g = 5;
func main() int {
	int sel = input32("sel");
	int *p = &g;
	if (sel == 3) { p = (int*)0; }
	return *p;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("sel", 3), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	if got := uint32(sres.TestCase.Streams["sel"][0]); got != 3 {
		t.Errorf("sel = %d, want 3", got)
	}
}

func TestReconstructUseAfterFree(t *testing.T) {
	src := `
func main() int {
	int n = input32("n");
	char *p = malloc(16);
	p[0] = 1;
	if (n == 9) { free(p); }
	p[1] = 2;
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("n", 9), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	if got := uint32(sres.TestCase.Streams["n"][0]); got != 9 {
		t.Errorf("n = %d, want 9", got)
	}
}

// TestReconstructPaperExample is the running example of Fig. 3 in
// minc: the abort requires x == d.
func TestReconstructPaperExample(t *testing.T) {
	src := `
uint V[256];
func foo(uint a, uint b, uint c, uint d) {
	uint x = a + b;
	if (x < 256 && c < 256 && d < 256) {
		V[x] = 1;
		if (V[c] == 0) {
			V[c] = 512;
		}
		V[V[x]] = x;
		if (c < d) {
			if (V[V[d]] == x) {
				abort("paper example");
			}
		}
	}
}
func main() int {
	foo((uint)input32("a"), (uint)input32("b"), (uint)input32("c"), (uint)input32("d"));
	return 0;
}`
	w := vm.NewWorkload().Add("a", 0).Add("b", 2).Add("c", 0).Add("d", 2)
	sres := reconstruct(t, src, w, symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	t.Logf("generated inputs: a=%d b=%d c=%d d=%d",
		sres.TestCase.Streams["a"][0], sres.TestCase.Streams["b"][0],
		sres.TestCase.Streams["c"][0], sres.TestCase.Streams["d"][0])
}

func TestReconstructMultithreaded(t *testing.T) {
	src := `
int shared = 0;
func worker(int v) {
	lock(1);
	shared = shared + v;
	unlock(1);
}
func main() int {
	int a = input32("a");
	long t1 = spawn worker(a);
	long t2 = spawn worker(10);
	join(t1);
	join(t2);
	assert(shared != 17, "racy sum");
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("a", 7), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v (%s)", sres.Status, sres.Err, sres.StallReason)
	}
	if got := uint32(sres.TestCase.Streams["a"][0]); got != 7 {
		t.Errorf("a = %d, want 7", got)
	}
}

func TestStallOnTinyBudget(t *testing.T) {
	// A write chain through symbolic indices: with a tiny solver
	// budget the engine must stall, not spin or fail.
	src := `
int m[128];
func main() int {
	int i = 0;
	while (i < 12) {
		int k = input32("k");
		if (k < 0 || k >= 120) { return 0; }
		m[k] = m[k + 1] + 1;
		i = i + 1;
	}
	assert(m[60] != 3, "chain");
	return 0;
}`
	// Build the chain upward so m[60] really reaches 3:
	// m[62]=1, m[61]=2, m[60]=3, then harmless writes.
	w := vm.NewWorkload().Add("k", 62, 61, 60)
	for i := 0; i < 9; i++ {
		w.Add("k", 100)
	}
	mod, tr, res := recordRun(t, src, w, 1)
	if res.Failure == nil {
		t.Fatal("expected failure in recorded run")
	}
	sres := symex.New(mod, tr, res.Failure, symex.Options{QueryBudget: 2000}).Run("main")
	if sres.Status != symex.StatusStalled {
		t.Fatalf("status %v (err %v), want stalled", sres.Status, sres.Err)
	}
	if len(sres.PathConstraint) == 0 {
		t.Error("stalled result should carry the path constraint")
	}
	if len(sres.Objects) == 0 {
		t.Error("stalled result should carry object states")
	}
}

func TestInputOrderAndSites(t *testing.T) {
	src := `
func main() int {
	int a = input32("x");
	int b = input32("y");
	int c = input32("x");
	assert(a + b + c != 6, "six");
	return 0;
}`
	sres := reconstruct(t, src, vm.NewWorkload().Add("x", 1, 3).Add("y", 2), symex.Options{})
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v", sres.Status, sres.Err)
	}
	if len(sres.Inputs) != 3 {
		t.Fatalf("inputs: %v", sres.Inputs)
	}
	if sres.Inputs[0].Tag != "x" || sres.Inputs[1].Tag != "y" || sres.Inputs[2].Tag != "x" {
		t.Errorf("input order wrong: %v", sres.Inputs)
	}
	if len(sres.Sites) == 0 {
		t.Error("no sites recorded")
	}
}

func TestProgressSampling(t *testing.T) {
	src := `
func main() int {
	int n = input32("n");
	int acc = 0;
	for (int i = 0; i < 2000; i = i + 1) { acc = acc + 1; }
	assert(acc + n != 2007, "x");
	return 0;
}`
	mod, tr, res := recordRun(t, src, vm.NewWorkload().Add("n", 7), 1)
	if res.Failure == nil {
		t.Fatal("expected failure")
	}
	sres := symex.New(mod, tr, res.Failure, symex.Options{ProgressEvery: 1000}).Run("main")
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v: %v", sres.Status, sres.Err)
	}
	if len(sres.Progress) == 0 {
		t.Error("no progress samples")
	}
}

func TestWallClockTimeout(t *testing.T) {
	// The paper's 30 s solver timeout is wall clock; verify the
	// deadline path stalls rather than hangs.
	src := `
int m[256];
func main() int {
	for (int i = 0; i < 14; i = i + 1) {
		int k = input32("k");
		if (k < 0 || k >= 250) { return 0; }
		m[k] = m[k + 1] + 1;
	}
	assert(m[60] != 3, "chain");
	return 0;
}`
	w := vm.NewWorkload().Add("k", 62, 61, 60)
	for i := 0; i < 11; i++ {
		w.Add("k", 200)
	}
	mod, tr, res := recordRun(t, src, w, 1)
	if res.Failure == nil {
		t.Fatal("no failure")
	}
	sres := symex.New(mod, tr, res.Failure, symex.Options{
		QueryTimeout: time.Microsecond, // effectively instant
	}).Run("main")
	if sres.Status != symex.StatusStalled {
		t.Fatalf("status %v, want stalled on wall-clock deadline", sres.Status)
	}
}

func TestDumpConstraints(t *testing.T) {
	src := `
func main() int {
	int x = input32("x");
	assert(x != 9, "nine");
	return 0;
}`
	mod, tr, res := recordRun(t, src, vm.NewWorkload().Add("x", 9), 1)
	sres := symex.New(mod, tr, res.Failure, symex.Options{}).Run("main")
	if sres.Status != symex.StatusCompleted {
		t.Fatalf("status %v", sres.Status)
	}
	var sb strings.Builder
	if err := sres.DumpConstraints(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(set-logic QF_ABV)") ||
		!strings.Contains(sb.String(), "check-sat") {
		t.Errorf("SMT-LIB dump malformed:\n%s", sb.String())
	}
}
