package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"
)

// ServerOptions configures the live introspection endpoint.
type ServerOptions struct {
	// Registry backs /metrics (Prometheus text format) and the
	// "metrics" section of /debug/er. Nil serves empty output.
	Registry *Registry
	// Tracer supplies the recent span trees of /debug/er.
	Tracer *Tracer
	// Debug, when set, is called per /debug/er request and its result
	// is embedded as the "state" section — the hook fleet uses to dump
	// per-bucket pipeline state.
	Debug func() interface{}
	// Journal backs /debug/er/events (JSONL drain, ?level= and ?n=
	// filters) and the "events" summary of /debug/er. Nil serves an
	// empty drain.
	Journal *Journal
	// Overhead, when set, embeds the recording-overhead ledger as the
	// "overhead" section of /debug/er — including the per-version
	// over-budget flags the SLO gate latches.
	Overhead *Overhead
	// Timeline, when set, backs /debug/er/timeline — the cluster
	// coordinator serves its stitched per-bucket timelines through
	// this hook.
	Timeline func() interface{}
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Extend, when set, is called with the mux after the standard
	// routes are mounted, so subsystems can layer their own API on the
	// same endpoint (the cluster coordinator mounts its versioned
	// /v1/* wire protocol this way).
	Extend func(mux *http.ServeMux)
}

// NewHandler returns the introspection mux:
//
//	/metrics   Prometheus text exposition of the registry
//	/debug/er  JSON: {state, metrics, spans} — live subsystem dump
//	/debug/pprof/... (only with Options.Pprof)
func NewHandler(opts ServerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := opts.Registry.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is note it.
			fmt.Fprintf(w, "# error: %v\n", err)
		}
	})
	mux.HandleFunc("/debug/er", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		payload := struct {
			Time     time.Time        `json:"time"`
			State    interface{}      `json:"state,omitempty"`
			Metrics  []FamilySnapshot `json:"metrics"`
			Spans    []SpanSnapshot   `json:"spans,omitempty"`
			Events   *[4]uint64       `json:"events,omitempty"`
			Overhead []OverheadRow    `json:"overhead,omitempty"`
		}{Time: time.Now(), Metrics: opts.Registry.Snapshot(), Spans: opts.Tracer.Recent()}
		if opts.Debug != nil {
			payload.State = opts.Debug()
		}
		if opts.Journal != nil {
			counts := opts.Journal.Counts()
			payload.Events = &counts
		}
		if opts.Overhead != nil {
			payload.Overhead = opts.Overhead.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(payload); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/er/events", func(w http.ResponseWriter, r *http.Request) {
		min := LevelDebug
		if s := r.URL.Query().Get("level"); s != "" {
			l, err := ParseLevel(s)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			min = l
		}
		max := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad n %q", s), http.StatusBadRequest)
				return
			}
			max = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = WriteJSONL(w, opts.Journal.Recent(min, max))
	})
	mux.HandleFunc("/debug/er/timeline", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var state interface{}
		if opts.Timeline != nil {
			state = opts.Timeline()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(state); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if opts.Extend != nil {
		opts.Extend(mux)
	}
	return mux
}

// Server is a running introspection endpoint.
type Server struct {
	ln     net.Listener
	srv    *http.Server
	served chan struct{} // closed when the serve goroutine exits
	once   sync.Once
	err    error
}

// drainTimeout bounds how long Close waits for in-flight handlers
// before tearing connections down. Handlers are fast (JSON/metric
// dumps), so a stuck connection past this is a hung client, not a
// draining response.
const drainTimeout = 5 * time.Second

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// introspection handler on it until Close.
func Serve(addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		ln:     ln,
		srv:    &http.Server{Handler: NewHandler(opts), ReadHeaderTimeout: 5 * time.Second},
		served: make(chan struct{}),
	}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path;
		// any other serve error leaves the endpoint dark but must not
		// take the reconstruction service down with it.
		defer close(s.served)
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the endpoint deterministically: the listener stops
// accepting, in-flight handlers drain (bounded by drainTimeout, after
// which lingering connections are torn down), and the serve goroutine
// is joined before Close returns — so repeated start/stop cycles
// (multi-node tests especially) can never leak the goroutine or the
// port. Nil-safe and idempotent.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	s.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		err := s.srv.Shutdown(ctx)
		if err != nil {
			// Drain window expired: force-close whatever is left.
			_ = s.srv.Close()
		}
		<-s.served
		s.err = err
	})
	return s.err
}
