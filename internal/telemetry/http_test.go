package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHandlerMetricsEndpoint(t *testing.T) {
	r := New()
	r.Counter("er_test_total", "help").Add(3)
	srv := httptest.NewServer(NewHandler(ServerOptions{Registry: r}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "er_test_total 3") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestHandlerDebugEndpoint(t *testing.T) {
	r := New()
	r.Gauge("er_test_depth", "").Set(5)
	tr := NewTracer(4)
	tr.Start("reconstruction", A("sig", "assert")).End()
	srv := httptest.NewServer(NewHandler(ServerOptions{
		Registry: r,
		Tracer:   tr,
		Debug:    func() interface{} { return map[string]int{"buckets": 2} },
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/er")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		State   map[string]int   `json:"state"`
		Metrics []FamilySnapshot `json:"metrics"`
		Spans   []SpanSnapshot   `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.State["buckets"] != 2 {
		t.Fatalf("state = %v", payload.State)
	}
	if len(payload.Metrics) != 1 || payload.Metrics[0].Name != "er_test_depth" {
		t.Fatalf("metrics = %+v", payload.Metrics)
	}
	if len(payload.Spans) != 1 || payload.Spans[0].Name != "reconstruction" {
		t.Fatalf("spans = %+v", payload.Spans)
	}
}

func TestHandlerPprofMount(t *testing.T) {
	with := httptest.NewServer(NewHandler(ServerOptions{Pprof: true}))
	defer with.Close()
	resp, err := http.Get(with.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}

	without := httptest.NewServer(NewHandler(ServerOptions{}))
	defer without.Close()
	resp2, err := http.Get(without.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("pprof must not be mounted by default")
	}
}

func TestServeAndClose(t *testing.T) {
	r := New()
	r.Counter("er_up_total", "").Inc()
	s, err := Serve("127.0.0.1:0", ServerOptions{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "er_up_total 1") {
		t.Fatalf("metrics body:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server must refuse connections after Close")
	}
	var nilServer *Server
	if nilServer.Close() != nil || nilServer.Addr() != "" {
		t.Fatal("nil server must be inert")
	}
}

func TestHandlerExtend(t *testing.T) {
	srv := httptest.NewServer(NewHandler(ServerOptions{
		Extend: func(mux *http.ServeMux) {
			mux.HandleFunc("/v1/ping", func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "pong")
			})
		},
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "pong" {
		t.Fatalf("extended route body = %q", body)
	}
}

// TestServeCloseDrainsInFlight pins the graceful-shutdown contract:
// Close must block until an in-flight handler finishes (no response is
// cut off mid-write) and must join the serve goroutine.
func TestServeCloseDrainsInFlight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	s, err := Serve("127.0.0.1:0", ServerOptions{
		Extend: func(mux *http.ServeMux) {
			mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
				close(entered)
				<-release
				io.WriteString(w, "done")
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var body string
	var getErr error
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + s.Addr() + "/slow")
		if err != nil {
			getErr = err
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
	}()
	<-entered
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	select {
	case err := <-closed:
		t.Fatalf("Close returned (%v) while a handler was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if getErr != nil {
		t.Fatalf("in-flight request failed across Close: %v", getErr)
	}
	if body != "done" {
		t.Fatalf("in-flight response = %q, want %q", body, "done")
	}
}

// TestServeCloseNoGoroutineLeak cycles the endpoint many times and
// asserts the goroutine count returns to baseline — repeated
// start/stop in multi-node tests must not leak serve goroutines (or
// ports, which the serve loop holding the listener would pin).
func TestServeCloseNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		s, err := Serve("127.0.0.1:0", ServerOptions{Registry: New()})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Get("http://" + s.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err := s.Close(); err != nil {
			t.Fatalf("Close cycle %d: %v", i, err)
		}
	}
	// Idle HTTP client keep-alive goroutines wind down asynchronously;
	// poll instead of asserting a single instantaneous count.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked across Serve/Close cycles: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
