package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsEndpoint(t *testing.T) {
	r := New()
	r.Counter("er_test_total", "help").Add(3)
	srv := httptest.NewServer(NewHandler(ServerOptions{Registry: r}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "er_test_total 3") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestHandlerDebugEndpoint(t *testing.T) {
	r := New()
	r.Gauge("er_test_depth", "").Set(5)
	tr := NewTracer(4)
	tr.Start("reconstruction", A("sig", "assert")).End()
	srv := httptest.NewServer(NewHandler(ServerOptions{
		Registry: r,
		Tracer:   tr,
		Debug:    func() interface{} { return map[string]int{"buckets": 2} },
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/er")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var payload struct {
		State   map[string]int   `json:"state"`
		Metrics []FamilySnapshot `json:"metrics"`
		Spans   []SpanSnapshot   `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if payload.State["buckets"] != 2 {
		t.Fatalf("state = %v", payload.State)
	}
	if len(payload.Metrics) != 1 || payload.Metrics[0].Name != "er_test_depth" {
		t.Fatalf("metrics = %+v", payload.Metrics)
	}
	if len(payload.Spans) != 1 || payload.Spans[0].Name != "reconstruction" {
		t.Fatalf("spans = %+v", payload.Spans)
	}
}

func TestHandlerPprofMount(t *testing.T) {
	with := httptest.NewServer(NewHandler(ServerOptions{Pprof: true}))
	defer with.Close()
	resp, err := http.Get(with.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}

	without := httptest.NewServer(NewHandler(ServerOptions{}))
	defer without.Close()
	resp2, err := http.Get(without.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("pprof must not be mounted by default")
	}
}

func TestServeAndClose(t *testing.T) {
	r := New()
	r.Counter("er_up_total", "").Inc()
	s, err := Serve("127.0.0.1:0", ServerOptions{Registry: r})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "er_up_total 1") {
		t.Fatalf("metrics body:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server must refuse connections after Close")
	}
	var nilServer *Server
	if nilServer.Close() != nil || nilServer.Addr() != "" {
		t.Fatal("nil server must be inert")
	}
}
