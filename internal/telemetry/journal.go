package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Journal is the structured event log of the reconstruction service:
// a bounded, lock-sharded ring of leveled events with per-event
// attributes, replacing the codebase's silent-failure paths (sweeper
// WAL errors, node fetch/decode failures, archive drops). Events are
// drained over HTTP at /debug/er/events as JSONL and can be tee'd to
// a writer (erd -log-json) as they are emitted.
//
// The concurrency contract matches the metrics registry: emission is
// lock-sharded so concurrent producers rarely contend, reads merge
// the shards by sequence number, and every method is nil-receiver
// safe so instrumented code pays one predictable branch when the
// journal is off.

// Level classifies an event's severity.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

var levelNames = [...]string{"debug", "info", "warn", "error"}

// String returns the level's lowercase name.
func (l Level) String() string {
	if l < LevelDebug || l > LevelError {
		return fmt.Sprintf("level(%d)", int32(l))
	}
	return levelNames[l]
}

// MarshalJSON encodes the level by name, matching what ParseLevel
// accepts and what the JSONL drain prints.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON accepts the name form.
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// ParseLevel maps a flag value ("debug", "info", "warn"/"warning",
// "error") to a Level; the error names the valid set for CLI exit-2
// messages.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("unknown log level %q (valid: debug, info, warn, error)", s)
}

// Event is one journal entry.
type Event struct {
	Seq       uint64            `json:"seq"`
	Time      time.Time         `json:"time"`
	Level     Level             `json:"level"`
	Component string            `json:"component"`
	Msg       string            `json:"msg"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

const journalShards = 8

// DefaultKeepEvents is the journal's default total ring capacity.
const DefaultKeepEvents = 1024

type journalShard struct {
	mu   sync.Mutex
	ring []Event // ring, oldest first
}

// JournalOptions configures a journal.
type JournalOptions struct {
	// Keep bounds the total retained events (<= 0 uses
	// DefaultKeepEvents).
	Keep int
	// Min drops events below this level at emission.
	Min Level
	// Tee, when set, receives every retained event as one JSON line
	// at emission (serialized under an internal mutex).
	Tee io.Writer
}

// Journal is a bounded, sharded, leveled event ring. The zero value
// is not usable; construct with NewJournal. A nil *Journal is a
// no-op sink.
type Journal struct {
	min        atomic.Int32
	seq        atomic.Uint64
	perShard   int
	shards     [journalShards]journalShard
	teeMu      sync.Mutex
	tee        io.Writer
	counts     [4]atomic.Uint64 // retained events per level
	suppressed atomic.Uint64    // below-min events dropped at emission
	now        func() time.Time
}

// NewJournal returns a journal retaining the last opts.Keep events.
func NewJournal(opts JournalOptions) *Journal {
	keep := opts.Keep
	if keep <= 0 {
		keep = DefaultKeepEvents
	}
	per := (keep + journalShards - 1) / journalShards
	if per < 1 {
		per = 1
	}
	j := &Journal{perShard: per, tee: opts.Tee, now: time.Now}
	j.min.Store(int32(opts.Min))
	return j
}

// SetClock overrides the journal's clock (tests only).
func (j *Journal) SetClock(now func() time.Time) {
	if j == nil || now == nil {
		return
	}
	j.now = now
}

// SetMin adjusts the emission threshold at runtime.
func (j *Journal) SetMin(l Level) {
	if j == nil {
		return
	}
	j.min.Store(int32(l))
}

// Min returns the current emission threshold (LevelError+1 — i.e.
// "nothing passes" is unrepresentable; a nil journal reports
// LevelError so Enabled is always false).
func (j *Journal) Min() Level {
	if j == nil {
		return LevelError + 1
	}
	return Level(j.min.Load())
}

// Enabled reports whether an event at level l would be retained —
// the guard for callers that build expensive attrs.
func (j *Journal) Enabled(l Level) bool {
	return j != nil && l >= Level(j.min.Load())
}

// Log records one event. Attrs are captured as given; the journal
// copies them into its own map, so callers may reuse Attr slices.
func (j *Journal) Log(l Level, component, msg string, attrs ...Attr) {
	if j == nil {
		return
	}
	if l < Level(j.min.Load()) {
		j.suppressed.Add(1)
		return
	}
	ev := Event{
		Seq:       j.seq.Add(1),
		Time:      j.now(),
		Level:     l,
		Component: component,
		Msg:       msg,
	}
	if len(attrs) > 0 {
		ev.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			ev.Attrs[a.Key] = a.Value
		}
	}
	if l >= LevelDebug && l <= LevelError {
		j.counts[l].Add(1)
	}
	sh := &j.shards[ev.Seq%journalShards]
	sh.mu.Lock()
	sh.ring = append(sh.ring, ev)
	if len(sh.ring) > j.perShard {
		sh.ring = sh.ring[len(sh.ring)-j.perShard:]
	}
	sh.mu.Unlock()
	if j.tee != nil {
		line, err := json.Marshal(ev)
		if err == nil {
			j.teeMu.Lock()
			j.tee.Write(line)         //nolint:errcheck // best-effort tee
			j.tee.Write([]byte{'\n'}) //nolint:errcheck
			j.teeMu.Unlock()
		}
	}
}

// Logf records one event with a formatted message.
func (j *Journal) Logf(l Level, component, format string, args ...interface{}) {
	if !j.Enabled(l) {
		if j != nil {
			j.suppressed.Add(1)
		}
		return
	}
	j.Log(l, component, fmt.Sprintf(format, args...))
}

// Recent returns up to max retained events at or above min, in
// sequence order (oldest first). max <= 0 means all retained.
func (j *Journal) Recent(min Level, max int) []Event {
	if j == nil {
		return nil
	}
	var out []Event
	for i := range j.shards {
		sh := &j.shards[i]
		sh.mu.Lock()
		for _, ev := range sh.ring {
			if ev.Level >= min {
				out = append(out, ev)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Counts returns how many events were retained per level over the
// journal's lifetime (index by Level).
func (j *Journal) Counts() [4]uint64 {
	var c [4]uint64
	if j == nil {
		return c
	}
	for i := range c {
		c[i] = j.counts[i].Load()
	}
	return c
}

// Emitted returns the journal's lifetime sequence counter (retained
// events; below-threshold emissions don't consume sequence numbers).
func (j *Journal) Emitted() uint64 {
	if j == nil {
		return 0
	}
	return j.seq.Load()
}

// RegisterMetrics exposes the journal's lifetime counters on a
// registry as er_journal_events_total{level=...}.
func (j *Journal) RegisterMetrics(r *Registry) {
	if j == nil || r == nil {
		return
	}
	for l := LevelDebug; l <= LevelError; l++ {
		l := l
		r.CounterFunc("er_journal_events_total", "journal events retained by level",
			func() float64 { return float64(j.counts[l].Load()) }, L("level", l.String()))
	}
}

// WriteJSONL renders events one JSON object per line — the
// /debug/er/events drain format and the -log-json tee format.
func WriteJSONL(w io.Writer, events []Event) error {
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
