package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		ok   bool
	}{
		{"debug", LevelDebug, true},
		{"info", LevelInfo, true},
		{"warn", LevelWarn, true},
		{"warning", LevelWarn, true},
		{"error", LevelError, true},
		{" Error ", LevelError, true},
		{"INFO", LevelInfo, true},
		{"", LevelInfo, false},
		{"verbose", LevelInfo, false},
		{"2", LevelInfo, false},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseLevel(%q) accepted, want error", c.in)
		}
	}
}

func TestJournalLevelFilterAndCounts(t *testing.T) {
	j := NewJournal(JournalOptions{Min: LevelWarn})
	j.Log(LevelDebug, "c", "dropped")
	j.Log(LevelInfo, "c", "dropped too")
	j.Log(LevelWarn, "c", "kept", A("k", "v"))
	j.Log(LevelError, "c", "kept too")
	if got := j.Emitted(); got != 2 {
		t.Errorf("Emitted = %d, want 2 (below-min events must not consume seqs)", got)
	}
	counts := j.Counts()
	if counts[LevelWarn] != 1 || counts[LevelError] != 1 || counts[LevelDebug] != 0 || counts[LevelInfo] != 0 {
		t.Errorf("Counts = %v", counts)
	}
	evs := j.Recent(LevelDebug, 0)
	if len(evs) != 2 {
		t.Fatalf("Recent = %d events, want 2: %+v", len(evs), evs)
	}
	if evs[0].Msg != "kept" || evs[0].Attrs["k"] != "v" || evs[1].Msg != "kept too" {
		t.Errorf("Recent order/content wrong: %+v", evs)
	}
	if evs[0].Seq >= evs[1].Seq {
		t.Errorf("events out of sequence order: %d then %d", evs[0].Seq, evs[1].Seq)
	}
	// Raising the floor at runtime suppresses; Enabled agrees.
	j.SetMin(LevelError)
	if j.Enabled(LevelWarn) || !j.Enabled(LevelError) {
		t.Errorf("Enabled disagrees with SetMin(LevelError)")
	}
	j.Log(LevelWarn, "c", "late drop")
	if got := len(j.Recent(LevelDebug, 0)); got != 2 {
		t.Errorf("Recent after SetMin = %d events, want 2", got)
	}
}

func TestJournalRingBound(t *testing.T) {
	const keep = 16
	j := NewJournal(JournalOptions{Keep: keep})
	for i := 0; i < 10*keep; i++ {
		j.Log(LevelInfo, "c", fmt.Sprintf("ev-%d", i))
	}
	evs := j.Recent(LevelDebug, 0)
	// Sharded ring: per-shard bound is ceil(keep/shards), so the total
	// retained is within one shard's capacity of keep.
	if len(evs) == 0 || len(evs) > keep+journalShards {
		t.Fatalf("retained %d events, want (0, %d]", len(evs), keep+journalShards)
	}
	// The newest events survive.
	last := evs[len(evs)-1]
	if last.Msg != fmt.Sprintf("ev-%d", 10*keep-1) {
		t.Errorf("newest retained = %q", last.Msg)
	}
	if got := j.Recent(LevelDebug, 4); len(got) != 4 {
		t.Errorf("Recent(max=4) = %d events", len(got))
	}
}

func TestJournalNilReceiver(t *testing.T) {
	var j *Journal
	// Every method must be a no-op, not a panic: instrumented code
	// calls these unconditionally when the journal is disabled.
	j.Log(LevelError, "c", "msg", A("k", "v"))
	j.Logf(LevelError, "c", "%d", 1)
	j.SetMin(LevelDebug)
	j.SetClock(time.Now)
	j.RegisterMetrics(New())
	j.RegisterMetrics(nil)
	if j.Enabled(LevelError) {
		t.Error("nil journal reports Enabled")
	}
	if got := j.Recent(LevelDebug, 0); got != nil {
		t.Errorf("nil journal Recent = %v", got)
	}
	if j.Counts() != [4]uint64{} {
		t.Errorf("nil journal Counts = %v", j.Counts())
	}
	if j.Emitted() != 0 {
		t.Errorf("nil journal Emitted = %d", j.Emitted())
	}
	if j.Min() <= LevelError {
		t.Errorf("nil journal Min = %v, want above LevelError", j.Min())
	}
}

func TestJournalTeeJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(JournalOptions{Tee: &buf})
	j.Log(LevelWarn, "sweeper", "lease expired", A("term", 3), A("node", "n1"))
	j.Log(LevelInfo, "fleet", "bucket ingested")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("tee wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("tee line not JSON: %v", err)
	}
	if ev.Level != LevelWarn || ev.Component != "sweeper" || ev.Attrs["term"] != "3" {
		t.Errorf("tee event = %+v", ev)
	}
	// WriteJSONL must emit the identical format.
	var out bytes.Buffer
	if err := WriteJSONL(&out, j.Recent(LevelDebug, 0)); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if out.String() != buf.String() {
		t.Errorf("WriteJSONL drain differs from tee:\n%q\n%q", out.String(), buf.String())
	}
}

func TestJournalRegisterMetrics(t *testing.T) {
	reg := New()
	j := NewJournal(JournalOptions{})
	j.RegisterMetrics(reg)
	j.Log(LevelError, "c", "boom")
	j.Log(LevelError, "c", "boom again")
	j.Log(LevelInfo, "c", "fine")
	fam, ok := reg.Family("er_journal_events_total")
	if !ok {
		t.Fatal("er_journal_events_total not registered")
	}
	got := map[string]float64{}
	for _, s := range fam.Series {
		for _, l := range s.Labels {
			if l.Name == "level" {
				got[l.Value] = s.Value
			}
		}
	}
	if got["error"] != 2 || got["info"] != 1 || got["debug"] != 0 || got["warn"] != 0 {
		t.Errorf("er_journal_events_total = %v", got)
	}
}

// TestJournalConcurrencyHammer drives concurrent producers across all
// levels against concurrent readers — the -race acceptance test for
// the lock-sharded ring.
func TestJournalConcurrencyHammer(t *testing.T) {
	j := NewJournal(JournalOptions{Keep: 64, Min: LevelInfo})
	const producers = 8
	const perProducer = 500
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: drain, count, and re-assert the level floor while
	// writes fly.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				j.Recent(LevelDebug, 0)
				j.Counts()
				j.Enabled(LevelWarn)
				if r == 0 {
					j.SetMin(LevelInfo) // idempotent flip keeps the path hot
				}
			}
		}(r)
	}
	for p := 0; p < producers; p++ {
		writers.Add(1)
		go func(p int) {
			defer writers.Done()
			for i := 0; i < perProducer; i++ {
				j.Log(Level(i%4), "hammer", "event", A("p", p), A("i", i))
			}
		}(p)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	counts := j.Counts()
	if counts[LevelDebug] != 0 {
		t.Errorf("debug events retained under Min=info: %d", counts[LevelDebug])
	}
	// 3 of 4 levels pass the floor.
	want := uint64(producers * perProducer * 3 / 4)
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != want {
		t.Errorf("retained %d events, want %d", total, want)
	}
	if j.Emitted() != want {
		t.Errorf("Emitted = %d, want %d", j.Emitted(), want)
	}
	evs := j.Recent(LevelDebug, 0)
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Seq >= evs[i].Seq {
			t.Fatalf("Recent not in sequence order at %d: %d >= %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
