package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Overhead is the recording-overhead accountant: it attributes
// production-side cost to each instrumentation version of each app —
// run wall time split traced vs. untraced (reported by prod.Machine
// per occurrence) and the recording-set byte cost keyselect chose for
// the version (reported at rollout) — and enforces the paper's
// deployability budget as an SLO: when an instrumented version's mean
// run time exceeds the uninstrumented (version 0) baseline by more
// than the configured percentage, the accountant raises a
// LevelError journal alert once per (app, version) and latches an
// OverBudget flag the /debug/er endpoint surfaces.
//
// All methods are nil-receiver safe; RecordRun is the hot path (one
// call per production run) and takes one short mutex hold.

// minOverheadSamples is how many runs a version and the baseline each
// need before the budget gate evaluates — below this the mean is
// noise, and a paced fleet accumulates samples in well under a
// second.
const minOverheadSamples = 8

// OverheadOptions configures the accountant.
type OverheadOptions struct {
	// BudgetPct is the SLO: the maximum tolerated mean-run-time
	// increase of an instrumented version over the version-0
	// baseline, in percent. <= 0 disables the gate (accounting still
	// runs).
	BudgetPct float64
	// Journal receives the budget-breach alerts.
	Journal *Journal
	// Registry, when set, gets the er_overhead_* series registered as
	// (app, version) cells appear.
	Registry *Registry
}

type overheadCell struct {
	app     string
	version int

	runs, ns                 uint64 // all runs of this version
	tracedRuns, tracedNS     uint64
	untracedRuns, untracedNS uint64

	sites     int   // recording sites instrumented for this version
	costBytes int64 // estimated per-occurrence recording cost

	alerted bool // budget alert already raised
}

type overheadKey struct {
	app     string
	version int
}

// Overhead accumulates per-(app, instrumentation version) production
// cost. Construct with NewOverhead.
type Overhead struct {
	budget   float64
	journal  *Journal
	registry *Registry

	mu       sync.Mutex
	cells    map[overheadKey]*overheadCell
	breaches atomic.Uint64
}

// NewOverhead returns an accountant enforcing opts.BudgetPct.
func NewOverhead(opts OverheadOptions) *Overhead {
	o := &Overhead{
		budget:   opts.BudgetPct,
		journal:  opts.Journal,
		registry: opts.Registry,
		cells:    make(map[overheadKey]*overheadCell),
	}
	if opts.Registry != nil {
		opts.Registry.CounterFunc("er_overhead_budget_breaches_total",
			"instrumentation versions whose mean run time exceeded the overhead budget",
			func() float64 { return float64(o.breaches.Load()) })
	}
	return o
}

// Budget returns the configured SLO in percent (0 = gate off).
func (o *Overhead) Budget() float64 {
	if o == nil {
		return 0
	}
	return o.budget
}

// cellLocked finds or creates the (app, version) cell, registering
// its metric series on first sight. Callers hold o.mu.
func (o *Overhead) cellLocked(app string, version int) *overheadCell {
	k := overheadKey{app, version}
	c := o.cells[k]
	if c != nil {
		return c
	}
	c = &overheadCell{app: app, version: version}
	o.cells[k] = c
	if r := o.registry; r != nil {
		labels := []Label{L("app", app), L("version", fmt.Sprintf("%d", version))}
		r.GaugeFunc("er_overhead_run_mean_seconds",
			"mean production run wall time per app and instrumentation version",
			func() float64 {
				o.mu.Lock()
				defer o.mu.Unlock()
				if c.runs == 0 {
					return 0
				}
				return float64(c.ns) / float64(c.runs) / 1e9
			}, labels...)
		r.GaugeFunc("er_overhead_pct",
			"mean run-time increase over the version-0 baseline, percent",
			func() float64 {
				o.mu.Lock()
				defer o.mu.Unlock()
				pct, ok := o.pctLocked(c)
				if !ok {
					return 0
				}
				return pct
			}, labels...)
		r.GaugeFunc("er_overhead_recording_bytes",
			"estimated per-occurrence recording cost of the version's key data value set",
			func() float64 {
				o.mu.Lock()
				defer o.mu.Unlock()
				return float64(c.costBytes)
			}, labels...)
		r.GaugeFunc("er_overhead_recording_sites",
			"key data value recording sites instrumented for the version",
			func() float64 {
				o.mu.Lock()
				defer o.mu.Unlock()
				return float64(c.sites)
			}, labels...)
	}
	return c
}

// pctLocked computes the version's overhead over the version-0
// baseline; ok is false until both sides have minOverheadSamples
// (and always for version 0 itself).
func (o *Overhead) pctLocked(c *overheadCell) (float64, bool) {
	if c.version == 0 || c.runs < minOverheadSamples {
		return 0, false
	}
	base := o.cells[overheadKey{c.app, 0}]
	if base == nil || base.runs < minOverheadSamples || base.ns == 0 {
		return 0, false
	}
	baseMean := float64(base.ns) / float64(base.runs)
	mean := float64(c.ns) / float64(c.runs)
	return (mean - baseMean) / baseMean * 100, true
}

// RecordRun attributes one production run's wall time to (app,
// version). traced marks whether the run carried the PT tracer (the
// split lets the ledger separate tracing cost from instrumentation
// cost). Evaluates the budget gate.
func (o *Overhead) RecordRun(app string, version int, traced bool, d time.Duration) {
	if o == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	ns := uint64(d.Nanoseconds())
	o.mu.Lock()
	c := o.cellLocked(app, version)
	c.runs++
	c.ns += ns
	if traced {
		c.tracedRuns++
		c.tracedNS += ns
	} else {
		c.untracedRuns++
		c.untracedNS += ns
	}
	var breach bool
	var pct float64
	if o.budget > 0 && !c.alerted {
		if p, ok := o.pctLocked(c); ok && p > o.budget {
			c.alerted = true
			breach = true
			pct = p
		}
	}
	o.mu.Unlock()
	if breach {
		o.breaches.Add(1)
		o.journal.Log(LevelError, "overhead",
			"instrumentation version exceeds the recording-overhead budget",
			A("app", app), A("version", version),
			A("overhead_pct", fmt.Sprintf("%.2f", pct)),
			A("budget_pct", fmt.Sprintf("%.2f", o.budget)))
	}
}

// SetRecordingCost attributes a version's recording-set size: the
// site count and estimated per-occurrence byte cost keyselect chose
// when the rollout was built.
func (o *Overhead) SetRecordingCost(app string, version, sites int, costBytes int64) {
	if o == nil {
		return
	}
	o.mu.Lock()
	c := o.cellLocked(app, version)
	c.sites = sites
	c.costBytes = costBytes
	o.mu.Unlock()
}

// Breaches returns how many (app, version) cells have tripped the
// budget gate.
func (o *Overhead) Breaches() uint64 {
	if o == nil {
		return 0
	}
	return o.breaches.Load()
}

// OverheadRow is one (app, version) ledger entry.
type OverheadRow struct {
	App     string `json:"app"`
	Version int    `json:"version"`

	Runs          uint64  `json:"runs"`
	MeanRunMillis float64 `json:"mean_run_ms"`
	TracedRuns    uint64  `json:"traced_runs"`
	UntracedRuns  uint64  `json:"untraced_runs,omitempty"`

	Sites     int   `json:"recording_sites"`
	CostBytes int64 `json:"recording_bytes"`

	// OverheadPct is the mean run-time increase over version 0;
	// meaningful only when Measured is true.
	OverheadPct float64 `json:"overhead_pct"`
	Measured    bool    `json:"measured"`
	OverBudget  bool    `json:"over_budget,omitempty"`
}

// Snapshot returns the ledger sorted by (app, version) — the
// /debug/er "overhead" section.
func (o *Overhead) Snapshot() []OverheadRow {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	rows := make([]OverheadRow, 0, len(o.cells))
	for _, c := range o.cells {
		row := OverheadRow{
			App: c.app, Version: c.version,
			Runs: c.runs, TracedRuns: c.tracedRuns, UntracedRuns: c.untracedRuns,
			Sites: c.sites, CostBytes: c.costBytes,
			OverBudget: c.alerted,
		}
		if c.runs > 0 {
			row.MeanRunMillis = float64(c.ns) / float64(c.runs) / 1e6
		}
		row.OverheadPct, row.Measured = o.pctLocked(c)
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].App != rows[j].App {
			return rows[i].App < rows[j].App
		}
		return rows[i].Version < rows[j].Version
	})
	return rows
}
