package telemetry

import (
	"testing"
	"time"
)

// feedRuns records n runs of d for (app, version).
func feedRuns(o *Overhead, app string, version, n int, traced bool, d time.Duration) {
	for i := 0; i < n; i++ {
		o.RecordRun(app, version, traced, d)
	}
}

func TestOverheadBaselineAndPct(t *testing.T) {
	o := NewOverhead(OverheadOptions{})
	feedRuns(o, "app", 0, minOverheadSamples, false, 10*time.Millisecond)
	feedRuns(o, "app", 1, minOverheadSamples, true, 11*time.Millisecond)
	o.SetRecordingCost("app", 1, 3, 24)

	rows := o.Snapshot()
	if len(rows) != 2 {
		t.Fatalf("ledger has %d cells, want 2: %+v", len(rows), rows)
	}
	v0, v1 := rows[0], rows[1]
	if v0.Version != 0 || v1.Version != 1 {
		t.Fatalf("snapshot not sorted by version: %+v", rows)
	}
	if v0.Measured {
		t.Error("version 0 must never report an overhead (it is the baseline)")
	}
	if !v1.Measured {
		t.Fatalf("version 1 not measured with %d samples each side: %+v", minOverheadSamples, v1)
	}
	if v1.OverheadPct < 9 || v1.OverheadPct > 11 {
		t.Errorf("overhead = %.2f%%, want ~10%%", v1.OverheadPct)
	}
	if v1.Sites != 3 || v1.CostBytes != 24 {
		t.Errorf("recording cost = %d sites / %dB, want 3 / 24", v1.Sites, v1.CostBytes)
	}
	if v1.TracedRuns != uint64(minOverheadSamples) || v0.UntracedRuns != uint64(minOverheadSamples) {
		t.Errorf("traced/untraced split wrong: v0=%+v v1=%+v", v0, v1)
	}
	if v0.MeanRunMillis < 9.9 || v0.MeanRunMillis > 10.1 {
		t.Errorf("baseline mean = %.3fms, want 10ms", v0.MeanRunMillis)
	}
}

func TestOverheadMinSamplesGuard(t *testing.T) {
	o := NewOverhead(OverheadOptions{BudgetPct: 1})
	// A wildly overbudget version must not trip the gate before both
	// sides have minOverheadSamples — below that the means are noise.
	feedRuns(o, "app", 0, minOverheadSamples-1, false, time.Millisecond)
	feedRuns(o, "app", 1, minOverheadSamples-1, true, 100*time.Millisecond)
	if o.Breaches() != 0 {
		t.Errorf("gate tripped with %d samples: %d breaches", minOverheadSamples-1, o.Breaches())
	}
	for _, row := range o.Snapshot() {
		if row.Measured || row.OverBudget {
			t.Errorf("row measured/flagged below the sample floor: %+v", row)
		}
	}
}

func TestOverheadBudgetGateLatchesOnce(t *testing.T) {
	j := NewJournal(JournalOptions{})
	o := NewOverhead(OverheadOptions{BudgetPct: 5, Journal: j})
	feedRuns(o, "app", 0, 32, false, time.Millisecond)
	feedRuns(o, "app", 1, 32, true, 2*time.Millisecond) // +100% vs +5% budget
	if o.Breaches() != 1 {
		t.Fatalf("breaches = %d, want exactly 1 (the gate latches per cell)", o.Breaches())
	}
	var alerts int
	for _, ev := range j.Recent(LevelError, 0) {
		if ev.Component == "overhead" {
			alerts++
			if ev.Attrs["app"] != "app" || ev.Attrs["version"] != "1" {
				t.Errorf("alert attrs = %v", ev.Attrs)
			}
		}
	}
	if alerts != 1 {
		t.Errorf("journal alerts = %d, want 1", alerts)
	}
	for _, row := range o.Snapshot() {
		if row.Version == 1 && !row.OverBudget {
			t.Errorf("version 1 not flagged over budget: %+v", row)
		}
	}
	// A second offending version is its own breach.
	feedRuns(o, "app", 2, 32, true, 3*time.Millisecond)
	if o.Breaches() != 2 {
		t.Errorf("breaches after second version = %d, want 2", o.Breaches())
	}
	// An in-budget version never trips.
	feedRuns(o, "other", 0, 32, false, 10*time.Millisecond)
	feedRuns(o, "other", 1, 32, true, 10*time.Millisecond)
	if o.Breaches() != 2 {
		t.Errorf("in-budget version tripped the gate: %d breaches", o.Breaches())
	}
}

func TestOverheadGateOffWithoutBudget(t *testing.T) {
	o := NewOverhead(OverheadOptions{}) // BudgetPct 0: accounting only
	feedRuns(o, "app", 0, 32, false, time.Millisecond)
	feedRuns(o, "app", 1, 32, true, 10*time.Millisecond)
	if o.Breaches() != 0 {
		t.Errorf("gate tripped with no budget configured: %d", o.Breaches())
	}
	if o.Budget() != 0 {
		t.Errorf("Budget = %v, want 0", o.Budget())
	}
}

func TestOverheadMetrics(t *testing.T) {
	reg := New()
	o := NewOverhead(OverheadOptions{BudgetPct: 5, Registry: reg})
	feedRuns(o, "app", 0, minOverheadSamples, false, time.Millisecond)
	feedRuns(o, "app", 1, minOverheadSamples, true, 2*time.Millisecond)
	o.SetRecordingCost("app", 1, 2, 16)
	for _, name := range []string{
		"er_overhead_run_mean_seconds",
		"er_overhead_pct",
		"er_overhead_recording_bytes",
		"er_overhead_recording_sites",
		"er_overhead_budget_breaches_total",
	} {
		if _, ok := reg.Family(name); !ok {
			t.Errorf("metric %s not registered", name)
		}
	}
	fam, _ := reg.Family("er_overhead_pct")
	var v1pct float64
	for _, s := range fam.Series {
		for _, l := range s.Labels {
			if l.Name == "version" && l.Value == "1" {
				v1pct = s.Value
			}
		}
	}
	if v1pct < 90 || v1pct > 110 {
		t.Errorf("er_overhead_pct{version=1} = %v, want ~100", v1pct)
	}
	fam, _ = reg.Family("er_overhead_budget_breaches_total")
	if len(fam.Series) != 1 || fam.Series[0].Value != 1 {
		t.Errorf("er_overhead_budget_breaches_total = %+v", fam.Series)
	}
}

func TestOverheadNilReceiver(t *testing.T) {
	var o *Overhead
	o.RecordRun("app", 1, true, time.Millisecond)
	o.SetRecordingCost("app", 1, 1, 1)
	if o.Breaches() != 0 || o.Budget() != 0 {
		t.Error("nil accountant reports activity")
	}
	if o.Snapshot() != nil {
		t.Error("nil accountant Snapshot != nil")
	}
}

func TestOverheadNegativeDurationClamped(t *testing.T) {
	o := NewOverhead(OverheadOptions{})
	o.RecordRun("app", 0, false, -time.Second)
	rows := o.Snapshot()
	if len(rows) != 1 || rows[0].MeanRunMillis != 0 {
		t.Errorf("negative duration not clamped: %+v", rows)
	}
}
