package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every registered metric family in the
// Prometheus text exposition format (version 0.0.4): one `# HELP` and
// `# TYPE` line per family, then one sample line per series, with
// histograms expanded into cumulative `_bucket{le=...}` samples plus
// `_sum` and `_count`. Families are sorted by name and label values
// are escaped, so the output is deterministic for a given registry
// state — which is what the golden-file test pins down.
//
// A nil registry writes nothing and returns nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, fam := range r.Snapshot() {
		if err := writeFamily(bw, fam); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeFamily(w *bufio.Writer, fam FamilySnapshot) error {
	if fam.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Kind); err != nil {
		return err
	}
	for _, s := range fam.Series {
		if s.Hist != nil {
			if err := writeHistogram(w, fam.Name, s); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			fam.Name, renderLabels(s.Labels, "", ""), FormatValue(s.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w *bufio.Writer, name string, s SeriesSnapshot) error {
	h := s.Hist
	var cum int64
	for i, ub := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, renderLabels(s.Labels, "le", FormatValue(ub)), cum); err != nil {
			return err
		}
	}
	if len(h.Counts) > 0 {
		cum += h.Counts[len(h.Counts)-1]
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
		name, renderLabels(s.Labels, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		name, renderLabels(s.Labels, "", ""), FormatValue(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		name, renderLabels(s.Labels, "", ""), cum)
	return err
}

// renderLabels renders `{a="x",b="y"}` (empty string when there are
// no labels), optionally appending one extra pair (the histogram `le`
// bound). Values are escaped per the exposition format: backslash,
// double-quote, and newline.
func renderLabels(labels []Label, extraName, extraValue string) string {
	if len(labels) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extraName != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}
