package telemetry

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// buildGoldenRegistry constructs a registry with one metric of each
// kind, exercising name sanitization and label escaping.
func buildGoldenRegistry() *Registry {
	r := New()
	r.Counter("er_fleet_occurrences_total", "occurrences triaged", L("app", "kvstore")).Add(7)
	r.Counter("er_fleet_occurrences_total", "occurrences triaged", L("app", `we"ird\app`+"\n")).Add(1)
	r.Gauge("er.fleet.queue depth", "sanitize me").Set(3)
	h := r.Histogram("er_core_stage_seconds", "stage latency", []float64{0.001, 0.01, 0.1}, L("stage", "shepherd"))
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2) // overflow
	return r
}

const goldenExposition = `# HELP er_core_stage_seconds stage latency
# TYPE er_core_stage_seconds histogram
er_core_stage_seconds_bucket{stage="shepherd",le="0.001"} 2
er_core_stage_seconds_bucket{stage="shepherd",le="0.01"} 2
er_core_stage_seconds_bucket{stage="shepherd",le="0.1"} 3
er_core_stage_seconds_bucket{stage="shepherd",le="+Inf"} 4
er_core_stage_seconds_sum{stage="shepherd"} 2.051
er_core_stage_seconds_count{stage="shepherd"} 4
# HELP er_fleet_occurrences_total occurrences triaged
# TYPE er_fleet_occurrences_total counter
er_fleet_occurrences_total{app="kvstore"} 7
er_fleet_occurrences_total{app="we\"ird\\app\n"} 1
# HELP er_fleet_queue_depth sanitize me
# TYPE er_fleet_queue_depth gauge
er_fleet_queue_depth 3
`

func TestPrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != goldenExposition {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenExposition)
	}
}

// sampleLine matches one exposition sample: name, optional label set,
// value. This is the expfmt-style line validator: every non-comment
// line of our output must match, names must be legal, and label
// values must be properly quoted.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)

var commentLine = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)

func TestPrometheusLineFormat(t *testing.T) {
	var b strings.Builder
	if err := buildGoldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a newline")
	}
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !commentLine.MatchString(line) {
				t.Errorf("malformed comment line: %q", line)
			}
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
}

// TestHistogramCumulativity checks the scraper-visible invariants of
// the histogram expansion: bucket counts are monotonically
// non-decreasing in le order, the +Inf bucket equals _count, and
// every series of the family carries the same bucket ladder.
func TestHistogramCumulativity(t *testing.T) {
	r := New()
	h1 := r.Histogram("er_h_seconds", "", []float64{0.01, 0.1, 1}, L("stage", "a"))
	h2 := r.Histogram("er_h_seconds", "", []float64{0.01, 0.1, 1}, L("stage", "b"))
	for i := 0; i < 100; i++ {
		h1.Observe(float64(i) * 0.02)
		h2.Observe(float64(i) * 0.001)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	type key struct{ stage string }
	lastCum := map[key]int64{}
	infSeen := map[key]int64{}
	countSeen := map[key]int64{}
	for _, line := range strings.Split(b.String(), "\n") {
		switch {
		case strings.HasPrefix(line, "er_h_seconds_bucket"):
			stage := extractLabel(t, line, "stage")
			le := extractLabel(t, line, "le")
			v := extractValue(t, line)
			k := key{stage}
			if v < lastCum[k] {
				t.Fatalf("bucket counts not cumulative at %q: %d < %d", line, v, lastCum[k])
			}
			lastCum[k] = v
			if le == "+Inf" {
				infSeen[k] = v
			}
		case strings.HasPrefix(line, "er_h_seconds_count"):
			stage := extractLabel(t, line, "stage")
			countSeen[key{stage}] = extractValue(t, line)
		}
	}
	for _, stage := range []string{"a", "b"} {
		k := key{stage}
		if infSeen[k] == 0 || infSeen[k] != countSeen[k] {
			t.Fatalf("stage %s: +Inf bucket %d != count %d", stage, infSeen[k], countSeen[k])
		}
		if countSeen[k] != 100 {
			t.Fatalf("stage %s: count = %d, want 100", stage, countSeen[k])
		}
	}
}

func extractLabel(t *testing.T, line, name string) string {
	t.Helper()
	re := regexp.MustCompile(name + `="((\\.|[^"\\])*)"`)
	m := re.FindStringSubmatch(line)
	if m == nil {
		t.Fatalf("label %s missing in %q", name, line)
	}
	return m[1]
}

func extractValue(t *testing.T, line string) int64 {
	t.Helper()
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		t.Fatalf("no value in %q", line)
	}
	v, err := strconv.ParseInt(line[i+1:], 10, 64)
	if err != nil {
		t.Fatalf("bad value in %q: %v", line, err)
	}
	return v
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"}, {3, "3"}, {-2, "-2"}, {2.5, "2.5"},
	}
	for _, c := range cases {
		if got := FormatValue(c.in); got != c.want {
			t.Errorf("FormatValue(%v) = %q, want %q", c.in, got, c.want)
		}
	}
	if FormatValue(inf()) != "+Inf" {
		t.Error("inf")
	}
}

func inf() float64 { var z float64; return 1 / z }

func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("er_bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	_ = fmt.Sprint(c.Value())
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("er_bench_seconds", "", nil)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.001)
		}
	})
}
