// Package telemetry is the measurement substrate of the ER service:
// a dependency-free, lock-sharded metrics registry (counters, gauges,
// bounded-bucket histograms with quantile estimation), a lightweight
// span tracer that records the ER iteration lifecycle as nested timed
// spans, a Prometheus text-exposition writer, and a live introspection
// HTTP handler (/metrics, /debug/er, optional pprof).
//
// ER is pitched as an always-on production service with a ~0.3%
// overhead budget (paper §2); a system with that posture must be able
// to watch itself. Every layer of the reconstruction loop — fleet
// ingest/triage, the per-bucket core pipelines, shepherded symbolic
// execution, the incremental solver sessions, and the trace archive —
// registers its counters here under the `er_<pkg>_<name>` naming
// scheme instead of (or in addition to) its bespoke one-shot stats
// structs, which remain as thin compatibility views.
//
// The registry is cheap by construction: metric lookup is two RLocks
// on a name-sharded table, and every mutation on the hot path is a
// single atomic op. All exported types are nil-safe — a nil *Registry
// hands out nil *Counter/*Gauge/*Histogram, and every method on those
// is a no-op — so instrumented code needs no "enabled?" branches:
// thread a nil registry and the whole layer costs a predicted
// branch per call site.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type.
type Kind int

// Metric kinds, mirroring the Prometheus data model.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one metric dimension (name=value pair).
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// regShards is the registry's shard count: metric families spread by
// name hash so unrelated packages registering or looking up metrics
// never contend on one lock.
const regShards = 16

// maxBuckets bounds a histogram's bucket count (the "+Inf" overflow
// bucket excluded); larger bound slices are truncated.
const maxBuckets = 64

// Registry is a lock-sharded metric registry. The zero value is not
// usable; call New. A nil *Registry is valid everywhere and disables
// collection.
type Registry struct {
	shards [regShards]regShard
}

type regShard struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// family groups all series of one metric name.
type family struct {
	name    string
	help    string
	kind    Kind
	bounds  []float64 // histogram upper bounds (ascending, +Inf implicit)
	mu      sync.RWMutex
	series  map[string]*series
	ordered []*series // registration order, for stable exposition
}

// series is one labelled time series.
type series struct {
	labels []Label
	// bounds is the owning family's bucket ladder (histograms only);
	// shared, read-only after registration.
	bounds []float64

	// counter value (KindCounter).
	count atomic.Int64
	// gauge value as float bits (KindGauge), or fn when the gauge is
	// a callback.
	fbits atomic.Uint64
	fn    func() float64

	// histogram state (KindHistogram).
	hcounts []atomic.Int64 // one per bound, overflow bucket last
	hsum    atomic.Uint64  // float bits, CAS-accumulated
	hcount  atomic.Int64
}

// New returns an empty registry.
func New() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].fams = make(map[string]*family)
	}
	return r
}

// shardOf picks the shard owning a metric name.
func (r *Registry) shardOf(name string) *regShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &r.shards[h.Sum32()%regShards]
}

// getOrCreate resolves (or registers) the family and the labelled
// series within it. Kind/bounds conflicts on an existing name keep
// the first registration; the caller's request is coerced onto it —
// misuse shows up in tests via Snapshot, never as a runtime panic in
// the serving path.
func (r *Registry) getOrCreate(name, help string, kind Kind, bounds []float64, labels []Label) *series {
	name = SanitizeName(name)
	sh := r.shardOf(name)

	sh.mu.RLock()
	fam := sh.fams[name]
	sh.mu.RUnlock()
	if fam == nil {
		sh.mu.Lock()
		fam = sh.fams[name]
		if fam == nil {
			if len(bounds) > maxBuckets {
				bounds = bounds[:maxBuckets]
			}
			fam = &family{
				name:   name,
				help:   help,
				kind:   kind,
				bounds: append([]float64(nil), bounds...),
				series: make(map[string]*series),
			}
			sh.fams[name] = fam
		}
		sh.mu.Unlock()
	}

	key := labelKey(labels)
	fam.mu.RLock()
	s := fam.series[key]
	fam.mu.RUnlock()
	if s != nil {
		return s
	}
	fam.mu.Lock()
	defer fam.mu.Unlock()
	if s = fam.series[key]; s != nil {
		return s
	}
	s = &series{labels: canonLabels(labels)}
	if fam.kind == KindHistogram {
		s.bounds = fam.bounds
		s.hcounts = make([]atomic.Int64, len(fam.bounds)+1)
	}
	fam.series[key] = s
	fam.ordered = append(fam.ordered, s)
	return s
}

// canonLabels returns a sorted copy of the labels with sanitized
// names.
func canonLabels(labels []Label) []Label {
	out := make([]Label, len(labels))
	for i, l := range labels {
		out[i] = Label{Name: SanitizeName(l.Name), Value: l.Value}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// labelKey encodes a label set into a map key (order-insensitive).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := canonLabels(labels)
	var b []byte
	for _, l := range ls {
		b = append(b, l.Name...)
		b = append(b, 0x1f)
		b = append(b, l.Value...)
		b = append(b, 0x1e)
	}
	return string(b)
}

// Counter registers (or resolves) a monotonically increasing counter.
// Returns nil on a nil registry; a nil *Counter's methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return (*Counter)(r.getOrCreate(name, help, KindCounter, nil, labels))
}

// CounterFunc registers a counter whose value is read from fn at
// collection time — the bridge for existing atomic counters that
// should not be double-counted. fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	s := r.getOrCreate(name, help, KindCounter, nil, labels)
	s.fn = fn
}

// Gauge registers (or resolves) a gauge. Returns nil on a nil
// registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return (*Gauge)(r.getOrCreate(name, help, KindGauge, nil, labels))
}

// GaugeFunc registers a gauge whose value is read from fn at
// collection time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	s := r.getOrCreate(name, help, KindGauge, nil, labels)
	s.fn = fn
}

// Histogram registers (or resolves) a bounded-bucket histogram with
// the given ascending upper bounds (nil = DefTimeBuckets). Returns
// nil on a nil registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefTimeBuckets
	}
	return (*Histogram)(r.getOrCreate(name, help, KindHistogram, bounds, labels))
}

// DefTimeBuckets is the default histogram bucket ladder for stage
// latencies, in seconds: 10µs … ~82s, exponential base 3.
var DefTimeBuckets = func() []float64 {
	var out []float64
	for b := 1e-5; b < 100; b *= 3 {
		out = append(out, b)
	}
	return out
}()

// Counter is a monotonically increasing counter. Nil-safe.
type Counter series

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	(*series)(c).count.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	if (*series)(c).fn != nil {
		return int64((*series)(c).fn())
	}
	return (*series)(c).count.Load()
}

// Gauge is an instantaneous value. Nil-safe.
type Gauge series

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	(*series)(g).fbits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (CAS loop; safe concurrently).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	s := (*series)(g)
	for {
		old := s.fbits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if s.fbits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	s := (*series)(g)
	if s.fn != nil {
		return s.fn()
	}
	return math.Float64frombits(s.fbits.Load())
}

// Histogram is a bounded-bucket histogram. Nil-safe.
type Histogram series

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	s := (*series)(h)
	// Find the first bound >= v. Bucket ladders are short (<= 64);
	// linear scan beats binary search at these sizes and keeps the
	// code branch-predictable.
	i := len(s.hcounts) - 1 // overflow by default
	for b, ub := range s.bounds {
		if v <= ub {
			i = b
			break
		}
	}
	s.hcounts[i].Add(1)
	s.hcount.Add(1)
	for {
		old := s.hsum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.hsum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds (negative durations — which a
// monotonic-clock regression could in principle produce — are clamped
// to zero rather than corrupting the sum).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.Observe(d.Seconds())
}

// Snapshot returns the histogram's point-in-time state (zero value
// on nil).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := (*series)(h)
	hs := HistSnapshot{
		Bounds: s.bounds,
		Counts: make([]int64, len(s.hcounts)),
		Sum:    math.Float64frombits(s.hsum.Load()),
		Count:  s.hcount.Load(),
	}
	var cum int64
	for i := range s.hcounts {
		hs.Counts[i] = s.hcounts[i].Load()
		cum += hs.Counts[i]
	}
	if cum > hs.Count {
		hs.Count = cum
	}
	return hs
}

// HistSnapshot is a consistent-enough point-in-time histogram view
// (bucket counts are read individually; the histogram may be observed
// concurrently, so Count can trail the bucket sum by in-flight
// updates — never the reverse).
type HistSnapshot struct {
	Bounds []float64 // upper bounds, ascending; overflow implicit
	Counts []int64   // per-bucket counts, overflow bucket last
	Count  int64
	Sum    float64
}

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation within the owning bucket; the overflow bucket reports
// its lower bound. Returns 0 on an empty histogram.
func (hs HistSnapshot) Quantile(q float64) float64 {
	if hs.Count == 0 || len(hs.Counts) == 0 {
		return 0
	}
	rank := q * float64(hs.Count)
	var cum float64
	lower := 0.0
	for i, c := range hs.Counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i == len(hs.Counts)-1 {
				return lower // overflow bucket: report its lower bound
			}
			ub := hs.Bounds[i]
			frac := (rank - cum) / float64(c)
			return lower + (ub-lower)*frac
		}
		if i < len(hs.Bounds) {
			lower = hs.Bounds[i]
		}
		cum = next
	}
	if len(hs.Bounds) > 0 {
		return hs.Bounds[len(hs.Bounds)-1]
	}
	return 0
}

// Mean returns the sample mean (0 when empty).
func (hs HistSnapshot) Mean() float64 {
	if hs.Count == 0 {
		return 0
	}
	return hs.Sum / float64(hs.Count)
}

// SeriesSnapshot is one labelled series' point-in-time value.
type SeriesSnapshot struct {
	Labels []Label       `json:"labels,omitempty"`
	Value  float64       `json:"value"`          // counter/gauge value
	Hist   *HistSnapshot `json:"hist,omitempty"` // histogram only
}

// FamilySnapshot is one metric family's point-in-time state.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every registered family, sorted by name (series
// in registration order). Safe to call while the registry is written.
func (r *Registry) Snapshot() []FamilySnapshot {
	if r == nil {
		return nil
	}
	var fams []*family
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, f := range sh.fams {
			fams = append(fams, f)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot())
	}
	return out
}

func (f *family) snapshot() FamilySnapshot {
	fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
	f.mu.RLock()
	ordered := append([]*series(nil), f.ordered...)
	f.mu.RUnlock()
	for _, s := range ordered {
		ss := SeriesSnapshot{Labels: s.labels}
		switch f.kind {
		case KindCounter:
			if s.fn != nil {
				ss.Value = s.fn()
			} else {
				ss.Value = float64(s.count.Load())
			}
		case KindGauge:
			if s.fn != nil {
				ss.Value = s.fn()
			} else {
				ss.Value = math.Float64frombits(s.fbits.Load())
			}
		case KindHistogram:
			h := (*Histogram)(s).Snapshot()
			ss.Hist = &h
		}
		fs.Series = append(fs.Series, ss)
	}
	return fs
}

// Family returns the named family's snapshot (zero value, false when
// absent).
func (r *Registry) Family(name string) (FamilySnapshot, bool) {
	if r == nil {
		return FamilySnapshot{}, false
	}
	name = SanitizeName(name)
	sh := r.shardOf(name)
	sh.mu.RLock()
	f := sh.fams[name]
	sh.mu.RUnlock()
	if f == nil {
		return FamilySnapshot{}, false
	}
	return f.snapshot(), true
}

// SanitizeName coerces s into a legal Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*. Illegal runes become '_'; an illegal
// leading rune is prefixed.
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	ok := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		legal := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !legal {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	b := []byte(s)
	for i := range b {
		c := b[i]
		legal := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !legal {
			b[i] = '_'
		}
	}
	return string(b)
}

// FormatValue renders a float the way the exposition format expects.
func FormatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}
