package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("er_test_ops_total", "ops", L("kind", "a"))
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels resolves the same series.
	if again := r.Counter("er_test_ops_total", "ops", L("kind", "a")); again.Value() != 5 {
		t.Fatalf("re-resolved counter = %d, want 5", again.Value())
	}
	// Different label value is a different series.
	if other := r.Counter("er_test_ops_total", "ops", L("kind", "b")); other.Value() != 0 {
		t.Fatalf("sibling series = %d, want 0", other.Value())
	}

	g := r.Gauge("er_test_depth", "depth")
	g.Set(3.5)
	g.Add(1.5)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	r.GaugeFunc("er_test_fn", "fn", func() float64 { return 42 })
	fam, ok := r.Family("er_test_fn")
	if !ok || len(fam.Series) != 1 || fam.Series[0].Value != 42 {
		t.Fatalf("gauge func family = %+v", fam)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	c.Add(3)
	g := r.Gauge("y", "")
	g.Set(1)
	g.Add(1)
	h := r.Histogram("z", "", nil)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	r.GaugeFunc("f", "", func() float64 { return 1 })
	r.CounterFunc("cf", "", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil registry metrics must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Fatal(err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("er_test_latency_seconds", "lat", []float64{0.01, 0.1, 1})
	for i := 0; i < 50; i++ {
		h.Observe(0.005) // first bucket
	}
	for i := 0; i < 40; i++ {
		h.Observe(0.05) // second bucket
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.5) // third bucket
	}
	h.Observe(10) // overflow

	hs := h.Snapshot()
	if hs.Count != 100 {
		t.Fatalf("count = %d, want 100", hs.Count)
	}
	wantCounts := []int64{50, 40, 9, 1}
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
	if math.Abs(hs.Sum-(50*0.005+40*0.05+9*0.5+10)) > 1e-9 {
		t.Fatalf("sum = %v", hs.Sum)
	}
	p50 := hs.Quantile(0.50)
	if p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want within first bucket (0, 0.01]", p50)
	}
	p90 := hs.Quantile(0.90)
	if p90 <= 0.01 || p90 > 0.1 {
		t.Fatalf("p90 = %v, want within second bucket (0.01, 0.1]", p90)
	}
	p99 := hs.Quantile(0.99)
	if p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %v, want within third bucket (0.1, 1]", p99)
	}
	if hs.Quantile(0.9999) != 1 {
		t.Fatalf("overflow quantile = %v, want lower bound 1", hs.Quantile(0.9999))
	}
	if mean := hs.Mean(); math.Abs(mean-hs.Sum/100) > 1e-12 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestObserveDurationClampsNegative(t *testing.T) {
	r := New()
	h := r.Histogram("er_test_neg_seconds", "", []float64{1})
	h.ObserveDuration(-5 * time.Second)
	hs := h.Snapshot()
	if hs.Count != 1 || hs.Sum != 0 {
		t.Fatalf("negative duration must clamp to 0: %+v", hs)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"er_core_ops_total": "er_core_ops_total",
		"er.core.ops":       "er_core_ops",
		"0bad":              "_bad", // leading digit illegal
		"with space":        "with_space",
		"":                  "_",
		"π":                 "__", // two UTF-8 bytes, each replaced
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRegistryConcurrency hammers registration and mutation from many
// goroutines; run under -race it is the registry's thread-safety
// regression.
func TestRegistryConcurrency(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	names := []string{"er_a_total", "er_b_total", "er_c_seconds", "er_d_depth"}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter(names[0], "", L("g", "x")).Inc()
				r.Counter(names[1], "").Add(2)
				r.Histogram(names[2], "", nil).Observe(float64(i) * 1e-4)
				r.Gauge(names[3], "").Set(float64(i))
				if i%50 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(discard{})
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter(names[0], "", L("g", "x")).Value(); got != 8*500 {
		t.Fatalf("racy counter = %d, want %d", got, 8*500)
	}
	if got := r.Counter(names[1], "").Value(); got != 8*500*2 {
		t.Fatalf("racy counter add = %d, want %d", got, 8*500*2)
	}
	hs := r.Histogram(names[2], "", nil).Snapshot()
	if hs.Count != 8*500 {
		t.Fatalf("racy histogram count = %d, want %d", hs.Count, 8*500)
	}
}

func TestLabelOrderInsensitive(t *testing.T) {
	r := New()
	a := r.Counter("er_t_total", "", L("x", "1"), L("y", "2"))
	b := r.Counter("er_t_total", "", L("y", "2"), L("x", "1"))
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("label order must not create distinct series")
	}
}
