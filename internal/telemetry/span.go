package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records the ER iteration lifecycle as nested timed spans:
// ingest → decode → shepherd → constraint-build → solve → keyselect →
// instrument → reoccurrence-wait, each carrying attributes (failure
// signature, iteration number, recording-set size, solver verdict).
//
// The concurrency contract mirrors how reconstruction actually runs:
// a span tree is built and mutated by the single goroutine driving
// one pipeline, and becomes visible to other goroutines (the
// introspection endpoint, ertrace -spans) only as an immutable
// SpanSnapshot, captured when its root span ends. The tracer keeps a
// bounded ring of the most recent finished root trees.
//
// All methods are nil-safe: a nil *Tracer starts nil *Spans, and nil
// *Span methods are no-ops, so instrumented code pays one predictable
// branch when tracing is off.
type Tracer struct {
	// now is the clock; tests override it. It must return monotonic
	// readings (the time package's default); span durations are
	// computed exclusively with Sub on these values and clamped at
	// zero, so a wall-clock step (NTP, manual adjustment) can never
	// yield a negative or inflated duration.
	now func() time.Time

	mu     sync.Mutex
	recent []SpanSnapshot // ring, oldest first
	keep   int
	seq    uint64 // finished root trees, total
}

// DefaultKeepSpans is how many finished root span trees a tracer
// retains by default.
const DefaultKeepSpans = 32

// NewTracer returns a tracer retaining the last keep finished root
// span trees (keep <= 0 uses DefaultKeepSpans).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = DefaultKeepSpans
	}
	return &Tracer{now: time.Now, keep: keep}
}

// SetClock overrides the tracer's clock (tests only). The clock must
// be safe for use from the goroutines that start spans.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.now = now
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value string
}

// A is shorthand for constructing an Attr; the value is rendered with
// %v.
func A(key string, value interface{}) Attr {
	return Attr{Key: key, Value: fmt.Sprintf("%v", value)}
}

// Span is one timed node of a trace tree. Mutate (Child, SetAttr,
// End) only from the goroutine that owns the tree.
type Span struct {
	tracer   *Tracer
	parent   *Span
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
	ctx      SpanContext
	remote   SpanID // parent span id in another process (StartRemote)
}

// Start begins a new root span. Returns nil on a nil tracer.
func (t *Tracer) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{tracer: t, name: name, start: t.now(), attrs: attrs, ctx: newSpanContext()}
}

// Child begins a nested span. Returns nil on a nil span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, parent: s, name: name, start: s.tracer.now(), attrs: attrs,
		ctx: SpanContext{TraceID: s.ctx.TraceID, SpanID: SpanID(newID())}}
	s.children = append(s.children, c)
	return c
}

// SetAttr records (or overwrites) an attribute.
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	v := fmt.Sprintf("%v", value)
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// End closes the span, computing its duration from the monotonic
// clock; negative results (possible only if a test clock runs
// backwards — the runtime's monotonic readings cannot) clamp to zero.
// Ending a root span publishes its snapshot to the tracer's recent
// ring. End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.endAt(s.tracer.now())
}

// EndAfter closes the span with an explicitly measured duration —
// used for stages whose time is metered elsewhere (e.g. solver wall
// time accumulated inside shepherded execution). Negative durations
// clamp to zero.
func (s *Span) EndAfter(d time.Duration) {
	if s == nil || s.ended {
		return
	}
	if d < 0 {
		d = 0
	}
	s.dur = d
	s.ended = true
	s.publish()
}

func (s *Span) endAt(now time.Time) {
	d := now.Sub(s.start)
	if d < 0 {
		d = 0
	}
	s.dur = d
	s.ended = true
	s.publish()
}

// publish snapshots a finished root span into the tracer ring. Open
// children are snapshotted as-is with their current elapsed time.
func (s *Span) publish() {
	if s.parent != nil || s.tracer == nil {
		return
	}
	sn := s.snapshot(s.tracer.now())
	t := s.tracer
	t.mu.Lock()
	t.seq++
	t.recent = append(t.recent, sn)
	if len(t.recent) > t.keep {
		t.recent = t.recent[len(t.recent)-t.keep:]
	}
	t.mu.Unlock()
}

// Duration returns the span's duration (elapsed-so-far while open; 0
// on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.ended {
		return s.dur
	}
	d := s.tracer.now().Sub(s.start)
	if d < 0 {
		d = 0
	}
	return d
}

// SpanSnapshot is an immutable copy of a span tree node.
type SpanSnapshot struct {
	Name string `json:"name"`
	// Start is the span's wall-clock start (informational only;
	// durations never derive from it).
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanSnapshot    `json:"children,omitempty"`
	// Open marks a span that had not ended when the snapshot was
	// taken (duration is elapsed-so-far).
	Open bool `json:"open,omitempty"`
	// TraceID/SpanID/ParentID carry the distributed trace identity as
	// 16-digit hex (empty on snapshots of pre-context spans). ParentID
	// names the parent span — in this process for nested children, in
	// another process for roots started via StartRemote — and is what
	// Stitch keys on to reassemble cross-process timelines.
	TraceID  string `json:"trace_id,omitempty"`
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
}

// Snapshot copies the span tree rooted at s. Safe only from the
// owning goroutine (other goroutines should consume Tracer.Recent).
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	return s.snapshot(s.tracer.now())
}

func (s *Span) snapshot(now time.Time) SpanSnapshot {
	sn := SpanSnapshot{Name: s.name, Start: s.start, Open: !s.ended}
	if s.ctx.TraceID != 0 {
		sn.TraceID = s.ctx.TraceID.String()
	}
	if s.ctx.SpanID != 0 {
		sn.SpanID = s.ctx.SpanID.String()
	}
	switch {
	case s.remote != 0:
		sn.ParentID = s.remote.String()
	case s.parent != nil && s.parent.ctx.SpanID != 0:
		sn.ParentID = s.parent.ctx.SpanID.String()
	}
	if s.ended {
		sn.Duration = s.dur
	} else {
		if d := now.Sub(s.start); d > 0 {
			sn.Duration = d
		}
	}
	if len(s.attrs) > 0 {
		sn.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			sn.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		sn.Children = append(sn.Children, c.snapshot(now))
	}
	return sn
}

// Recent returns the tracer's retained finished root span trees,
// oldest first. Safe concurrently.
func (t *Tracer) Recent() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanSnapshot, len(t.recent))
	copy(out, t.recent)
	return out
}

// Finished returns how many root span trees have ended over the
// tracer's lifetime (retained or evicted).
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// WriteTree renders a span tree as an indented text outline:
//
//	reconstruction 12.3ms sig="assert @kv_get"
//	  iteration 8.1ms occurrence=1
//	    shepherd 7.9ms status=stalled
//	    keyselect 180µs sites=2
//
// Attributes print sorted by key for deterministic output.
func WriteTree(w io.Writer, sn SpanSnapshot) error {
	return writeTree(w, sn, 0)
}

func writeTree(w io.Writer, sn SpanSnapshot, depth int) error {
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(sn.Name)
	b.WriteByte(' ')
	b.WriteString(sn.Duration.Round(time.Microsecond).String())
	if sn.Open {
		b.WriteString(" (open)")
	}
	keys := make([]string, 0, len(sn.Attrs))
	for k := range sn.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%q", k, sn.Attrs[k])
	}
	b.WriteByte('\n')
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	for _, c := range sn.Children {
		if err := writeTree(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}
