package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestSpanNesting(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracer(8)
	tr.SetClock(clk.now)

	root := tr.Start("reconstruction", A("sig", "assert @main"))
	clk.advance(time.Millisecond)
	it := root.Child("iteration", A("occurrence", 1))
	clk.advance(2 * time.Millisecond)
	sh := it.Child("shepherd")
	clk.advance(5 * time.Millisecond)
	sh.SetAttr("status", "stalled")
	sh.End()
	it.Child("solve").EndAfter(3 * time.Millisecond)
	it.End()
	clk.advance(time.Millisecond)
	root.End()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent = %d trees, want 1", len(recent))
	}
	sn := recent[0]
	if sn.Name != "reconstruction" || sn.Duration != 9*time.Millisecond {
		t.Fatalf("root = %q %v", sn.Name, sn.Duration)
	}
	if sn.Attrs["sig"] != "assert @main" {
		t.Fatalf("root attrs = %v", sn.Attrs)
	}
	if len(sn.Children) != 1 || sn.Children[0].Name != "iteration" {
		t.Fatalf("children = %+v", sn.Children)
	}
	itSn := sn.Children[0]
	if itSn.Duration != 7*time.Millisecond {
		t.Fatalf("iteration duration = %v, want 7ms", itSn.Duration)
	}
	if len(itSn.Children) != 2 {
		t.Fatalf("iteration children = %d, want 2", len(itSn.Children))
	}
	if itSn.Children[0].Attrs["status"] != "stalled" {
		t.Fatalf("shepherd attrs = %v", itSn.Children[0].Attrs)
	}
	if itSn.Children[1].Duration != 3*time.Millisecond {
		t.Fatalf("solve (EndAfter) duration = %v", itSn.Children[1].Duration)
	}
	if tr.Finished() != 1 {
		t.Fatalf("finished = %d", tr.Finished())
	}
}

// TestSpanMonotonicGuard is the satellite regression: span durations
// must never be negative or inflated by wall-clock steps. We simulate
// the worst case — a clock that runs backwards between start and end
// — and require a zero (not negative) duration; and EndAfter with a
// negative measured duration likewise clamps.
func TestSpanMonotonicGuard(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracer(4)
	tr.SetClock(clk.now)

	s := tr.Start("backwards")
	clk.advance(-10 * time.Second) // wall clock stepped back
	s.End()
	sn := tr.Recent()[0]
	if sn.Duration != 0 {
		t.Fatalf("backwards clock: duration = %v, want 0 (clamped)", sn.Duration)
	}

	s2 := tr.Start("negative-endafter")
	s2.EndAfter(-time.Second)
	if got := tr.Recent()[1].Duration; got != 0 {
		t.Fatalf("EndAfter(-1s): duration = %v, want 0", got)
	}

	// Real clock: durations of spans that did work are strictly
	// positive (time.Now's monotonic reading cannot decrease), and a
	// span enclosing a child is at least as long as the child.
	real := NewTracer(4)
	root := real.Start("root")
	child := root.Child("child")
	for i := 0; i < 1000; i++ {
		_ = i * i
	}
	child.End()
	root.End()
	got := real.Recent()[0]
	if got.Duration < 0 || got.Children[0].Duration < 0 {
		t.Fatal("real-clock spans must never be negative")
	}
	if got.Duration < got.Children[0].Duration {
		t.Fatalf("parent %v shorter than child %v", got.Duration, got.Children[0].Duration)
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 10; i++ {
		tr.Start("s", A("i", i)).End()
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring = %d, want 3", len(recent))
	}
	if recent[2].Attrs["i"] != "9" || recent[0].Attrs["i"] != "7" {
		t.Fatalf("ring holds wrong trees: %v", recent)
	}
	if tr.Finished() != 10 {
		t.Fatalf("finished = %d, want 10", tr.Finished())
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer must start nil spans")
	}
	// All nil-span operations are no-ops.
	s.SetAttr("k", "v")
	c := s.Child("y")
	c.End()
	s.End()
	s.EndAfter(time.Second)
	if s.Duration() != 0 {
		t.Fatal("nil span duration must be 0")
	}
	if tr.Recent() != nil || tr.Finished() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracer(4)
	tr.SetClock(clk.now)
	s := tr.Start("once")
	clk.advance(time.Second)
	s.End()
	clk.advance(time.Hour)
	s.End() // must not re-publish or change duration
	if n := len(tr.Recent()); n != 1 {
		t.Fatalf("double End published %d trees", n)
	}
	if d := tr.Recent()[0].Duration; d != time.Second {
		t.Fatalf("duration changed on second End: %v", d)
	}
}

func TestWriteTree(t *testing.T) {
	clk := newFakeClock()
	tr := NewTracer(4)
	tr.SetClock(clk.now)
	root := tr.Start("reconstruction", A("sig", "oob @get"))
	it := root.Child("iteration", A("occurrence", 1))
	clk.advance(1500 * time.Microsecond)
	it.End()
	root.End()

	var b strings.Builder
	if err := WriteTree(&b, tr.Recent()[0]); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("tree lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "reconstruction 1.5ms") || !strings.Contains(lines[0], `sig="oob @get"`) {
		t.Fatalf("root line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  iteration 1.5ms") || !strings.Contains(lines[1], `occurrence="1"`) {
		t.Fatalf("child line = %q", lines[1])
	}
}
