package telemetry

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Distributed trace identity. A reconstruction's life spans processes
// — coordinator ingest/lease on one side, node replay/solve on the
// other — so span trees carry a (TraceID, SpanID) context that
// crosses the /v1/* wire envelopes and lets the coordinator stitch
// remote subtrees back under the bucket's timeline.
//
// IDs are 64-bit: a per-process random base advanced by a golden-ratio
// stride, so IDs never repeat within a process and collide across
// processes only with ~2^-64 probability per pair. Zero is reserved
// as "no id".

// TraceID identifies one end-to-end bucket timeline.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the id as 16 lowercase hex digits (W3C-style).
func (id TraceID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// MarshalJSON encodes the id as a hex string: uint64 values above
// 2^53 are not representable as JSON numbers, and hex matches what
// the snapshot/debug endpoints print.
func (id TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON accepts the hex-string form.
func (id *TraceID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*id = TraceID(v)
	return err
}

// MarshalJSON encodes the id as a hex string.
func (id SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON accepts the hex-string form.
func (id *SpanID) UnmarshalJSON(b []byte) error {
	v, err := unmarshalHexID(b)
	*id = SpanID(v)
	return err
}

func unmarshalHexID(b []byte) (uint64, error) {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return 0, err
	}
	if s == "" {
		return 0, nil
	}
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return 0, fmt.Errorf("telemetry: bad trace/span id %q: %w", s, err)
	}
	return v, nil
}

// SpanContext is the wire-portable identity of a span: enough for a
// remote process to open children under it and for the origin to
// re-attach their snapshots later.
type SpanContext struct {
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id"`
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return c.TraceID != 0 && c.SpanID != 0 }

var (
	idBase    = rand.Uint64()
	idCounter atomic.Uint64
)

// newID returns a process-unique nonzero 64-bit id.
func newID() uint64 {
	// Odd stride ⇒ full 2^64 cycle: no repeats for the process
	// lifetime regardless of the random base.
	const stride = 0x9e3779b97f4a7c15
	id := idBase + idCounter.Add(1)*stride
	if id == 0 {
		id = 1
	}
	return id
}

// NewTraceID mints a fresh trace id (used by subsystems that create
// timelines without a live span, e.g. the cluster coordinator's
// per-bucket timelines).
func NewTraceID() TraceID { return TraceID(newID()) }

func newSpanContext() SpanContext {
	return SpanContext{TraceID: TraceID(newID()), SpanID: SpanID(newID())}
}

// Context returns the span's wire-portable identity (zero on nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// StartRemote begins a root span parented under a span in another
// process: the new span joins parent's trace and records parent's
// SpanID, so the origin process can stitch this tree's snapshot back
// under its own via Stitch. An invalid parent degrades to a plain
// Start (fresh trace, no remote parent). Returns nil on a nil tracer.
func (t *Tracer) StartRemote(name string, parent SpanContext, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tracer: t, name: name, start: t.now(), attrs: attrs, ctx: newSpanContext()}
	if parent.Valid() {
		s.ctx.TraceID = parent.TraceID
		s.remote = parent.SpanID
	}
	return s
}

// Drain returns the tracer's retained finished root trees, oldest
// first, and clears the ring (the lifetime Finished counter is
// preserved). Safe concurrently; nil-safe.
func (t *Tracer) Drain() []SpanSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.recent
	t.recent = nil
	return out
}

// Stitch reassembles a distributed trace from root snapshots gathered
// across processes: any root whose ParentID names a span present in
// another tree of the same trace is re-attached as that span's child.
// Roots whose parent is absent (still running remotely, evicted, or
// from an unrelated trace) stay top level. The inputs are not
// mutated; children sort by start time for deterministic rendering.
func Stitch(roots []SpanSnapshot) []SpanSnapshot {
	type node struct {
		sn       SpanSnapshot
		children []*node
		root     *node // the top-level tree this node currently belongs to
	}
	index := make(map[string]*node) // "trace/span" -> node
	var convert func(sn SpanSnapshot, root *node) *node
	convert = func(sn SpanSnapshot, root *node) *node {
		n := &node{sn: sn}
		n.sn.Children = nil
		if root == nil {
			root = n
		}
		n.root = root
		if sn.TraceID != "" && sn.SpanID != "" {
			index[sn.TraceID+"/"+sn.SpanID] = n
		}
		for _, c := range sn.Children {
			n.children = append(n.children, convert(c, root))
		}
		return n
	}
	tops := make([]*node, 0, len(roots))
	for _, r := range roots {
		tops = append(tops, convert(r, nil))
	}
	owner := func(n *node) *node {
		r := n.root
		for r != r.root {
			r = r.root
		}
		return r
	}
	attached := make(map[*node]bool)
	for _, t := range tops {
		if t.sn.ParentID == "" || t.sn.TraceID == "" {
			continue
		}
		p, ok := index[t.sn.TraceID+"/"+t.sn.ParentID]
		if !ok || owner(p) == t {
			continue // absent parent, or attaching would close a cycle
		}
		p.children = append(p.children, t)
		t.root = p.root
		attached[t] = true
	}
	var render func(n *node) SpanSnapshot
	render = func(n *node) SpanSnapshot {
		sn := n.sn
		sort.SliceStable(n.children, func(i, j int) bool {
			return n.children[i].sn.Start.Before(n.children[j].sn.Start)
		})
		for _, c := range n.children {
			sn.Children = append(sn.Children, render(c))
		}
		return sn
	}
	var out []SpanSnapshot
	for _, t := range tops {
		if attached[t] {
			continue
		}
		out = append(out, render(t))
	}
	return out
}
