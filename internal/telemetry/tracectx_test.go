package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTraceIDJSONRoundTrip(t *testing.T) {
	id := TraceID(0xdeadbeef01020304)
	b, err := json.Marshal(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeef01020304"` {
		t.Errorf("TraceID JSON = %s", b)
	}
	var back TraceID
	if err := json.Unmarshal(b, &back); err != nil || back != id {
		t.Errorf("round-trip = %v, %v", back, err)
	}
	var sp SpanID
	if err := json.Unmarshal([]byte(`"00000000000000ff"`), &sp); err != nil || sp != 0xff {
		t.Errorf("SpanID unmarshal = %v, %v", sp, err)
	}
	// Empty string is "no id", not an error (omitted wire fields).
	var zero TraceID
	if err := json.Unmarshal([]byte(`""`), &zero); err != nil || zero != 0 {
		t.Errorf("empty id = %v, %v", zero, err)
	}
	if err := json.Unmarshal([]byte(`"not hex"`), &back); err == nil {
		t.Error("garbage id accepted")
	}
	if err := json.Unmarshal([]byte(`42`), &back); err == nil {
		t.Error("numeric id accepted (wire ids are hex strings)")
	}
}

func TestNewTraceIDUniqueNonzero(t *testing.T) {
	seen := make(map[TraceID]bool, 10_000)
	for i := 0; i < 10_000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id minted (zero is reserved)")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %v after %d mints", id, i)
		}
		seen[id] = true
	}
}

func TestSpanContextValid(t *testing.T) {
	if (SpanContext{}).Valid() {
		t.Error("zero context valid")
	}
	if (SpanContext{TraceID: 1}).Valid() || (SpanContext{SpanID: 1}).Valid() {
		t.Error("half-zero context valid")
	}
	if !(SpanContext{TraceID: 1, SpanID: 2}).Valid() {
		t.Error("full context invalid")
	}
}

func TestStartRemoteParenting(t *testing.T) {
	tr := NewTracer(0)
	parent := SpanContext{TraceID: 0xaaaa, SpanID: 0xbbbb}
	s := tr.StartRemote("replay", parent, A("node", "n0"))
	sn := s.Snapshot()
	if sn.TraceID != parent.TraceID.String() {
		t.Errorf("remote span trace = %s, want parent's %s", sn.TraceID, parent.TraceID)
	}
	if sn.ParentID != parent.SpanID.String() {
		t.Errorf("remote span parent = %s, want %s", sn.ParentID, parent.SpanID)
	}
	if sn.SpanID == "" || sn.SpanID == parent.SpanID.String() {
		t.Errorf("remote span id = %q", sn.SpanID)
	}
	// Local children inherit the remote-joined trace.
	c := s.Child("reconstruction")
	csn := c.Snapshot()
	if csn.TraceID != parent.TraceID.String() {
		t.Errorf("child trace = %s, want %s", csn.TraceID, parent.TraceID)
	}
	if csn.ParentID != sn.SpanID {
		t.Errorf("child parent = %s, want %s", csn.ParentID, sn.SpanID)
	}
	c.End()
	s.End()

	// An invalid parent degrades to a fresh root trace.
	orphan := NewTracer(0).StartRemote("replay", SpanContext{})
	osn := orphan.Snapshot()
	if osn.ParentID != "" {
		t.Errorf("orphan has parent %s", osn.ParentID)
	}
	if osn.TraceID == "" || osn.TraceID == "0000000000000000" {
		t.Errorf("orphan trace = %q, want fresh nonzero", osn.TraceID)
	}

	// Nil tracer: nil span, and the nil span degrades everywhere.
	var nt *Tracer
	if s := nt.StartRemote("x", parent); s != nil {
		t.Errorf("nil tracer StartRemote = %v", s)
	}
}

func TestTracerDrain(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 3; i++ {
		tr.Start("root").End()
	}
	first := tr.Drain()
	if len(first) != 3 {
		t.Fatalf("Drain = %d trees, want 3", len(first))
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Errorf("second Drain = %d trees, want 0 (ring cleared)", len(got))
	}
	if tr.Finished() != 3 {
		t.Errorf("Finished = %d after drain, want 3 (lifetime counter survives)", tr.Finished())
	}
	var nt *Tracer
	if nt.Drain() != nil {
		t.Error("nil tracer Drain != nil")
	}
}

// TestStitch reassembles a coordinator-side skeleton and a node-side
// replay tree shipped as separate snapshots — the cross-process
// timeline path.
func TestStitch(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	bucket := SpanSnapshot{
		Name: "bucket", Start: base,
		TraceID: TraceID(0x11).String(), SpanID: SpanID(0x22).String(),
		Children: []SpanSnapshot{
			{Name: "lease", Start: base.Add(time.Second), TraceID: TraceID(0x11).String()},
		},
	}
	replay := SpanSnapshot{
		Name: "replay", Start: base.Add(2 * time.Second),
		TraceID: TraceID(0x11).String(), SpanID: SpanID(0x33).String(),
		ParentID: SpanID(0x22).String(),
		Children: []SpanSnapshot{{Name: "reconstruction", Start: base.Add(3 * time.Second)}},
	}
	unrelated := SpanSnapshot{
		Name: "stray", TraceID: TraceID(0x99).String(),
		SpanID: SpanID(0x01).String(), ParentID: SpanID(0x22).String(),
	}

	out := Stitch([]SpanSnapshot{bucket, replay, unrelated})
	if len(out) != 2 {
		t.Fatalf("Stitch kept %d roots, want 2 (bucket + unrelated): %+v", len(out), out)
	}
	root := out[0]
	if root.Name != "bucket" || len(root.Children) != 2 {
		t.Fatalf("stitched root = %+v", root)
	}
	// Children sort by start: lease first, then the attached replay.
	if root.Children[0].Name != "lease" || root.Children[1].Name != "replay" {
		t.Errorf("stitched order = %s, %s", root.Children[0].Name, root.Children[1].Name)
	}
	if len(root.Children[1].Children) != 1 || root.Children[1].Children[0].Name != "reconstruction" {
		t.Errorf("replay subtree lost: %+v", root.Children[1])
	}
	// The stray root (same parent id, different trace) stays top level.
	if out[1].Name != "stray" {
		t.Errorf("unrelated root = %+v", out[1])
	}
	// Inputs are not mutated.
	if len(bucket.Children) != 1 {
		t.Errorf("Stitch mutated its input: %+v", bucket.Children)
	}

	// A self-parent cycle must not hang or attach.
	cyc := SpanSnapshot{
		Name: "cycle", TraceID: TraceID(0x55).String(),
		SpanID: SpanID(0x66).String(), ParentID: SpanID(0x66).String(),
	}
	if got := Stitch([]SpanSnapshot{cyc}); len(got) != 1 || got[0].Name != "cycle" {
		t.Errorf("cycle handling = %+v", got)
	}
}
