package tracestore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Compaction. A bucket whose failure has been reconstructed no longer
// needs every archived reoccurrence — the fleet retires it, and
// compaction rewrites the segment log keeping only the bucket's
// reference record and its final occurrence (the audit pair: what the
// bucket looked like when it was solved), reclaiming the interior
// deltas. Live (unretired) buckets are copied verbatim.
//
// Compaction copies surviving records into fresh segments, then
// unlinks the old ones. Old file handles are kept open until Close so
// in-flight streaming readers finish unperturbed; a crash mid-
// compaction at worst leaves both copies on disk, which Open
// deduplicates by (key, seq).

// Retire marks the bucket as resolved: its interior delta records
// become garbage for the next compaction pass. With
// Options.AutoCompact the background compactor is nudged immediately.
func (s *Store) Retire(key uint64) {
	s.mu.Lock()
	ks := s.keys[key]
	if ks != nil {
		ks.retired = true
		// The cached reference stream is only needed to delta-encode
		// future appends and serve delta reads; drop it eagerly —
		// retired buckets stop appending, and readers reload it on
		// demand.
		ks.refRaw = nil
	}
	auto := s.opts.AutoCompact && ks != nil
	s.mu.Unlock()
	if auto {
		select {
		case s.compactCh <- struct{}{}:
		default: // a pass is already pending
		}
	}
}

// Retired reports whether the bucket has been retired.
func (s *Store) Retired(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.keys[key]
	return ks != nil && ks.retired
}

// compactor is the background compaction goroutine (AutoCompact).
func (s *Store) compactor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.doneCh:
			return
		case <-s.compactCh:
			_, _ = s.Compact() // errors are reflected in stats staying flat
		}
	}
}

// CompactResult summarizes one compaction pass.
type CompactResult struct {
	// DroppedRecords is the number of interior records reclaimed.
	DroppedRecords int64
	// ReclaimedBytes is the on-disk byte reduction.
	ReclaimedBytes int64
	// Segments is the live segment count after the pass.
	Segments int
}

// Compact synchronously rewrites the log, dropping retired buckets'
// interior records. It is a no-op (and cheap) when nothing is
// reclaimable.
func (s *Store) Compact() (CompactResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return CompactResult{}, fmt.Errorf("tracestore: store is closed")
	}

	// Decide what survives.
	type keep struct {
		key uint64
		ref recordRef
	}
	var keeps []keep
	var dropped int64
	for key, ks := range s.keys {
		for i, r := range ks.recs {
			if ks.retired && len(ks.recs) > 2 && i > 0 && i < len(ks.recs)-1 {
				dropped++
				continue
			}
			keeps = append(keeps, keep{key: key, ref: r})
		}
	}
	if dropped == 0 {
		return CompactResult{Segments: len(s.segs)}, nil
	}
	// Deterministic copy order: by segment, then offset (sequential
	// disk reads).
	sort.Slice(keeps, func(i, j int) bool {
		if keeps[i].ref.seg != keeps[j].ref.seg {
			return keeps[i].ref.seg < keeps[j].ref.seg
		}
		return keeps[i].ref.off < keeps[j].ref.off
	})

	oldStored := s.stats.StoredBytes
	oldSegs := s.segs
	s.segs = make(map[int]*segfile)
	s.cur = nil
	newRecs := make(map[uint64][]recordRef)
	for _, k := range keeps {
		src := oldSegs[k.ref.seg]
		if src == nil {
			s.segs = oldSegs // roll back the swap
			return CompactResult{}, fmt.Errorf("tracestore: compact: missing segment %d", k.ref.seg)
		}
		payload := make([]byte, k.ref.plen)
		if _, err := src.f.ReadAt(payload, k.ref.off); err != nil {
			s.segs = oldSegs
			return CompactResult{}, fmt.Errorf("tracestore: compact read: %w", err)
		}
		seg, off, err := s.appendPayloadLocked(payload)
		if err != nil {
			s.segs = oldSegs
			return CompactResult{}, fmt.Errorf("tracestore: compact write: %w", err)
		}
		nr := k.ref
		nr.seg = seg
		nr.off = off
		newRecs[k.key] = append(newRecs[k.key], nr)
	}
	// Swap the index and retire the old files: unlink on disk, keep
	// handles open for in-flight readers until Close.
	var reclaimed int64
	for _, sf := range oldSegs {
		reclaimed += sf.size
		s.zombies = append(s.zombies, sf.f)
		_ = os.Remove(filepath.Join(s.dir, segName(sf.id)))
	}
	var newStored int64
	s.stats.Records, s.stats.References, s.stats.Deltas = 0, 0, 0
	s.stats.RawBytes, s.stats.StoredBytes = 0, 0
	for key, ks := range s.keys {
		ks.recs = newRecs[key]
		sort.Slice(ks.recs, func(i, j int) bool { return ks.recs[i].seq < ks.recs[j].seq })
		if len(ks.recs) == 0 {
			delete(s.keys, key)
			continue
		}
		for _, r := range ks.recs {
			s.accountAdd(r)
			newStored += r.storedBytes()
		}
	}
	s.stats.Compactions++
	s.stats.ReclaimedBytes += oldStored - newStored
	return CompactResult{
		DroppedRecords: dropped,
		ReclaimedBytes: oldStored - newStored,
		Segments:       len(s.segs),
	}, nil
}
