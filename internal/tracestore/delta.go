package tracestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Delta encoding of a reoccurrence's raw PT packet stream against the
// bucket's reference stream (the first archived occurrence). ER's
// premise — the same failure reoccurs with nearly identical control
// flow — makes reoccurrence streams nearly (often exactly) identical
// byte sequences, so an rsync-style copy/literal delta collapses each
// subsequent occurrence to a handful of bytes.
//
// Op stream format (the body of a KindDelta record):
//
//	opCopy    off uvarint, len uvarint   — ref[off : off+len]
//	opLiteral plen uvarint, plen packed  — RLE-packed literal bytes
//
// terminated by the end of the framed body. Literal runs go through
// the same RLE packer as reference bodies (TNT-run compression), so
// even a delta that degenerates to one big literal is no worse than a
// reference record.
//
// Matching uses a Rabin-Karp rolling hash over fixed-size blocks: the
// reference is indexed at non-overlapping block boundaries, the
// target is scanned at every offset, and hash hits are verified
// byte-for-byte then extended forward (and backward into the pending
// literal) as far as the streams agree.

const (
	opCopy    byte = 1
	opLiteral byte = 2
)

// defaultBlockSize is the delta matching granularity. Small enough to
// find matches across PTW-packet insertions after a re-instrumentation
// rollout, large enough to keep the index sparse.
const defaultBlockSize = 32

const (
	rkBase = 0x100000001b3 // FNV prime as polynomial base
)

// rkPow returns base^(n-1) for rolling the leading byte out.
func rkPow(n int) uint64 {
	p := uint64(1)
	for i := 1; i < n; i++ {
		p *= rkBase
	}
	return p
}

func rkHash(b []byte) uint64 {
	var h uint64
	for _, c := range b {
		h = h*rkBase + uint64(c)
	}
	return h
}

// maxHashChain bounds the per-hash candidate list so pathological
// references (one repeated block) cannot make encoding quadratic.
const maxHashChain = 4

// deltaEncode appends the delta op stream for target against ref to
// dst. blockSize ≤ 0 selects defaultBlockSize.
func deltaEncode(dst, ref, target []byte, blockSize int) []byte {
	if blockSize <= 0 {
		blockSize = defaultBlockSize
	}
	emitLiteral := func(lit []byte) {
		if len(lit) == 0 {
			return
		}
		packed := packRLE(nil, lit)
		dst = append(dst, opLiteral)
		dst = putUvarint(dst, uint64(len(packed)))
		dst = append(dst, packed...)
	}
	emitCopy := func(off, n int) {
		dst = append(dst, opCopy)
		dst = putUvarint(dst, uint64(off))
		dst = putUvarint(dst, uint64(n))
	}
	if len(ref) < blockSize || len(target) < blockSize {
		emitLiteral(target)
		return dst
	}

	// Index the reference at non-overlapping block boundaries.
	index := make(map[uint64][]int32, len(ref)/blockSize+1)
	for o := 0; o+blockSize <= len(ref); o += blockSize {
		h := rkHash(ref[o : o+blockSize])
		if cand := index[h]; len(cand) < maxHashChain {
			index[h] = append(cand, int32(o))
		}
	}

	pow := rkPow(blockSize)
	litStart := 0 // start of the pending literal run in target
	p := 0
	h := rkHash(target[:blockSize])
	for p+blockSize <= len(target) {
		matched := false
		for _, c := range index[h] {
			o := int(c)
			if !bytesEqual(ref[o:o+blockSize], target[p:p+blockSize]) {
				continue
			}
			// Extend backward into the pending literal.
			for o > 0 && p > litStart && ref[o-1] == target[p-1] {
				o--
				p--
			}
			// Extend forward past the block.
			n := blockSize + (int(c) - o)
			for o+n < len(ref) && p+n < len(target) && ref[o+n] == target[p+n] {
				n++
			}
			emitLiteral(target[litStart:p])
			emitCopy(o, n)
			p += n
			litStart = p
			if p+blockSize <= len(target) {
				h = rkHash(target[p : p+blockSize])
			}
			matched = true
			break
		}
		if matched {
			continue
		}
		// Roll the window one byte forward.
		if p+blockSize < len(target) {
			h = (h-uint64(target[p])*pow)*rkBase + uint64(target[p+blockSize])
		}
		p++
	}
	emitLiteral(target[litStart:])
	return dst
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// deltaApply materializes a delta op stream against ref (tests, CLI;
// the store's read path streams through deltaReader instead).
func deltaApply(ref, ops []byte) ([]byte, error) {
	var out []byte
	r := newDeltaReader(bufio.NewReader(newBytesReader(ops)), ref)
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// deltaReader streams the reconstructed raw byte stream of a delta
// record: ops are read lazily from the segment, copy ranges are
// served from the in-memory reference stream, and literal runs are
// RLE-unpacked on the fly. Nothing but the (shared, per-bucket)
// reference is held in memory.
type deltaReader struct {
	ops *bufio.Reader
	ref []byte
	cur io.Reader // active op's byte source (nil = fetch next op)
	err error
}

func newDeltaReader(ops *bufio.Reader, ref []byte) *deltaReader {
	return &deltaReader{ops: ops, ref: ref}
}

func (d *deltaReader) nextOp() error {
	op, err := d.ops.ReadByte()
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return err
	}
	switch op {
	case opCopy:
		off, err := binary.ReadUvarint(d.ops)
		if err != nil {
			return fmt.Errorf("tracestore: truncated copy offset")
		}
		n, err := binary.ReadUvarint(d.ops)
		if err != nil {
			return fmt.Errorf("tracestore: truncated copy length")
		}
		if off > uint64(len(d.ref)) || n > uint64(len(d.ref))-off {
			return fmt.Errorf("tracestore: delta copy [%d,+%d) out of reference range %d", off, n, len(d.ref))
		}
		d.cur = newBytesReader(d.ref[off : off+n])
	case opLiteral:
		plen, err := binary.ReadUvarint(d.ops)
		if err != nil {
			return fmt.Errorf("tracestore: truncated literal length")
		}
		d.cur = newRLEReader(bufio.NewReader(io.LimitReader(d.ops, int64(plen))))
	default:
		return fmt.Errorf("tracestore: unknown delta op %#x", op)
	}
	return nil
}

func (d *deltaReader) Read(p []byte) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	for {
		if d.cur == nil {
			if err := d.nextOp(); err != nil {
				d.err = err
				return 0, err
			}
		}
		n, err := d.cur.Read(p)
		if err == io.EOF {
			d.cur = nil
			if n > 0 {
				return n, nil
			}
			continue
		}
		if err != nil {
			d.err = err
		}
		return n, err
	}
}
