package tracestore

import "execrecon/internal/telemetry"

// RegisterMetrics publishes the store's counters into the shared
// telemetry registry as collection-time callbacks (er_tracestore_*).
// The callbacks read through Stats(), which takes the store mutex, so
// a concurrent /metrics scrape always sees a consistent snapshot —
// there is no second copy of the numbers to fall out of sync, and the
// Stats struct remains the programmatic view.
//
// Safe to call more than once per registry (callbacks re-resolve the
// same series); nil registry is a no-op.
func (s *Store) RegisterMetrics(reg *telemetry.Registry) {
	if s == nil || reg == nil {
		return
	}
	reg.GaugeFunc("er_tracestore_segments",
		"live segment files", func() float64 { return float64(s.Stats().Segments) })
	reg.GaugeFunc("er_tracestore_records",
		"live archived records", func() float64 { return float64(s.Stats().Records) })
	reg.GaugeFunc("er_tracestore_records_reference",
		"live reference (first-occurrence) records", func() float64 { return float64(s.Stats().References) })
	reg.GaugeFunc("er_tracestore_records_delta",
		"live delta-compressed records", func() float64 { return float64(s.Stats().Deltas) })
	reg.GaugeFunc("er_tracestore_raw_bytes",
		"raw (as-shipped) bytes of live records", func() float64 { return float64(s.Stats().RawBytes) })
	reg.GaugeFunc("er_tracestore_stored_bytes",
		"framed on-disk bytes of live records", func() float64 { return float64(s.Stats().StoredBytes) })
	reg.GaugeFunc("er_tracestore_compression_ratio",
		"raw over stored bytes of live records", func() float64 { return s.Stats().Ratio() })
	reg.CounterFunc("er_tracestore_appends_total",
		"records appended since Open", func() float64 { return float64(s.Stats().Appends) })
	reg.CounterFunc("er_tracestore_recoveries_total",
		"torn tails truncated at Open", func() float64 { return float64(s.Stats().Recoveries) })
	reg.CounterFunc("er_tracestore_compactions_total",
		"completed compaction passes", func() float64 { return float64(s.Stats().Compactions) })
	reg.CounterFunc("er_tracestore_reclaimed_bytes_total",
		"disk bytes released by compaction", func() float64 { return float64(s.Stats().ReclaimedBytes) })
}
