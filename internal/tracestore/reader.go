package tracestore

import (
	"bufio"
	"fmt"
	"io"

	"execrecon/internal/pt"
)

// Reader streams one archived occurrence's decoded trace events. It
// implements pt.EventSource, so it plugs directly into shepherded
// symbolic execution (symex.NewFromEvents / core.Occurrence.Events):
// segment bytes are read incrementally, delta ops are applied on the
// fly (copy ranges served from the shared per-bucket reference
// stream), and PT packets decode one at a time — the full event slice
// is never materialized.
type Reader struct {
	*pt.StreamDecoder
	info RecordInfo
}

// Info describes the record being read.
func (r *Reader) Info() RecordInfo { return r.info }

// Err returns the terminal error of the stream, if any: a decode
// error from the packet layer or a reconstruction error from the
// delta/RLE layer. Only meaningful once Peek has returned nil.
func (r *Reader) Err() error { return r.StreamDecoder.Err() }

var _ pt.EventSource = (*Reader)(nil)

// OpenEvents opens a streaming event reader over the archived
// occurrence (key, seq). The reader stays valid across concurrent
// appends and compactions (segments are immutable once written;
// compaction unlinks but never rewrites them in place).
func (s *Store) OpenEvents(key, seq uint64) (*Reader, error) {
	s.mu.Lock()
	ks, r, err := s.lookupLocked(key, seq)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	sf := s.segs[r.seg]
	if sf == nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("tracestore: record references missing segment %d", r.seg)
	}
	var refRaw []byte
	if r.kind == KindDelta {
		refRaw, err = s.refRawLocked(key, ks)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
	}
	s.mu.Unlock()

	body := bufio.NewReaderSize(sectionReader(sf.f, r.off+int64(r.hdrLen), r.plen-r.hdrLen), 4096)
	var raw io.Reader
	if r.kind == KindReference {
		raw = newRLEReader(body)
	} else {
		raw = newDeltaReader(body, refRaw)
	}
	return &Reader{
		StreamDecoder: pt.NewStreamDecoder(raw, r.meta.Lost),
		info: RecordInfo{
			Key: key, Seq: r.seq, Kind: r.kind, Meta: r.meta,
			RawLen: r.rawLen, StoredBytes: r.storedBytes(),
		},
	}, nil
}
