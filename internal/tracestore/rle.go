package tracestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Byte-level run-length packing of PT packet streams. TNT payload
// bytes are heavily repetitive — loop-dominated control flow emits
// long runs of 0xff/0x00 bit groups, and varint-encoded packet bodies
// repeat byte patterns — so references and delta literal runs both go
// through this packer before hitting the segment log.
//
// Encoding: a sequence of runs, each introduced by a uvarint control
// word ctrl = (runLen << 1) | isRepeat.
//
//	isRepeat == 1: one value byte follows; it repeats runLen times.
//	isRepeat == 0: runLen verbatim bytes follow.
//
// The stream is self-terminating by length (the container frames the
// packed body), and unpacking is a streaming operation: rleReader
// yields bytes without materializing the unpacked stream.

// rleMinRun is the repeat-run threshold: a repeat run costs ≥2 bytes
// (ctrl + value), so runs shorter than 3 stay literal.
const rleMinRun = 3

// packRLE appends the packed form of src to dst and returns it.
func packRLE(dst, src []byte) []byte {
	litStart := 0
	flushLit := func(end int) {
		for litStart < end {
			n := end - litStart
			dst = putUvarint(dst, uint64(n)<<1)
			dst = append(dst, src[litStart:litStart+n]...)
			litStart = end
		}
	}
	i := 0
	for i < len(src) {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		if run := j - i; run >= rleMinRun {
			flushLit(i)
			dst = putUvarint(dst, uint64(run)<<1|1)
			dst = append(dst, src[i])
			litStart = j
		}
		i = j
	}
	flushLit(len(src))
	return dst
}

// unpackRLE materializes a packed stream (test/CLI convenience; the
// hot read path streams through rleReader instead).
func unpackRLE(src []byte) ([]byte, error) {
	var out []byte
	r := newRLEReader(bufio.NewReader(newBytesReader(src)))
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func newBytesReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (s *sliceReader) Read(p []byte) (int, error) {
	if len(s.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, s.b)
	s.b = s.b[n:]
	return n, nil
}

// rleReader streams the unpacked bytes of an RLE-packed stream.
type rleReader struct {
	br      *bufio.Reader
	runLeft uint64
	repeat  bool
	val     byte
	err     error
}

func newRLEReader(br *bufio.Reader) *rleReader { return &rleReader{br: br} }

func (r *rleReader) nextRun() error {
	ctrl, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return io.EOF
	}
	if err != nil {
		return fmt.Errorf("tracestore: corrupt RLE control: %w", err)
	}
	r.repeat = ctrl&1 == 1
	r.runLeft = ctrl >> 1
	if r.repeat {
		v, err := r.br.ReadByte()
		if err != nil {
			return fmt.Errorf("tracestore: truncated RLE repeat value")
		}
		r.val = v
	}
	if r.runLeft == 0 && r.repeat {
		return fmt.Errorf("tracestore: empty RLE repeat run")
	}
	return nil
}

func (r *rleReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for r.runLeft == 0 {
		if err := r.nextRun(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := len(p)
	if uint64(n) > r.runLeft {
		n = int(r.runLeft)
	}
	if r.repeat {
		for i := 0; i < n; i++ {
			p[i] = r.val
		}
	} else {
		m, err := io.ReadFull(r.br, p[:n])
		if err != nil {
			r.err = fmt.Errorf("tracestore: truncated RLE literal run")
			return m, r.err
		}
	}
	r.runLeft -= uint64(n)
	return n, nil
}
