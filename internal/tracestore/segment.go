package tracestore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"execrecon/internal/vm"
)

// Segment framing. A segment file is a sequence of framed records:
//
//	+-------+------------+------------+---------------+
//	| magic | payloadLen | crc32(pay) |  payload ...  |
//	|  4 B  |  4 B (LE)  |  4 B (LE)  |  payloadLen B |
//	+-------+------------+------------+---------------+
//
// The payload is self-describing (see encodePayload). A crash can
// only tear the tail of the last segment; recovery scans frames and
// truncates at the first bad magic, oversized length, short read, or
// CRC mismatch — every fully framed record before the tear survives,
// the tear itself is discarded, and the store keeps appending after
// it. Nothing before a valid frame is ever rewritten, so a torn tail
// is never fatal.

var segMagic = [4]byte{'E', 'R', 'S', '1'}

const (
	frameHeaderSize = 12
	// maxPayload bounds a single record (a trace blob plus metadata);
	// anything larger in a frame header is treated as corruption.
	maxPayload = 1 << 30
)

// Record kinds.
const (
	// KindReference is a bucket's first archived occurrence: the full
	// raw packet stream, RLE-packed.
	KindReference byte = 1
	// KindDelta is a subsequent reoccurrence, stored as copy-range +
	// literal-run ops against the bucket's reference stream.
	KindDelta byte = 2
)

func segName(id int) string { return fmt.Sprintf("seg-%08d.log", id) }

func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".log")
	if len(mid) == 0 {
		return 0, false
	}
	id := 0
	for _, c := range mid {
		if c < '0' || c > '9' {
			return 0, false
		}
		id = id*10 + int(c-'0')
	}
	return id, true
}

// --- varint / string primitives -------------------------------------

func putUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func putZigzag(dst []byte, v int64) []byte {
	return putUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func putString(dst []byte, s string) []byte {
	dst = putUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// byteScanner walks an in-memory payload with error latching, so the
// parser reads like straight-line code and corrupt input surfaces as
// one error instead of a panic.
type byteScanner struct {
	b   []byte
	i   int
	err error
}

func (s *byteScanner) fail(what string) {
	if s.err == nil {
		s.err = fmt.Errorf("tracestore: corrupt payload: %s at offset %d", what, s.i)
	}
}

func (s *byteScanner) uvarint() uint64 {
	if s.err != nil {
		return 0
	}
	v, n := binary.Uvarint(s.b[s.i:])
	if n <= 0 {
		s.fail("bad uvarint")
		return 0
	}
	s.i += n
	return v
}

func (s *byteScanner) zigzag() int64 {
	u := s.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (s *byteScanner) byte() byte {
	if s.err != nil {
		return 0
	}
	if s.i >= len(s.b) {
		s.fail("truncated byte")
		return 0
	}
	c := s.b[s.i]
	s.i++
	return c
}

func (s *byteScanner) str() string {
	n := s.uvarint()
	if s.err != nil {
		return ""
	}
	if n > uint64(len(s.b)-s.i) {
		s.fail("string length out of range")
		return ""
	}
	v := string(s.b[s.i : s.i+int(n)])
	s.i += int(n)
	return v
}

// --- failure signature codec ----------------------------------------

func encodeFailure(dst []byte, f *vm.Failure) []byte {
	dst = putUvarint(dst, uint64(f.Kind))
	dst = putString(dst, f.Msg)
	dst = putString(dst, f.Func)
	dst = putZigzag(dst, int64(f.InstrID))
	dst = putZigzag(dst, int64(f.Line))
	dst = putZigzag(dst, int64(f.Tid))
	dst = putUvarint(dst, uint64(len(f.Stack)))
	for _, fr := range f.Stack {
		dst = putString(dst, fr)
	}
	return dst
}

func (s *byteScanner) failure() *vm.Failure {
	f := &vm.Failure{}
	f.Kind = vm.FailKind(s.uvarint())
	f.Msg = s.str()
	f.Func = s.str()
	f.InstrID = int32(s.zigzag())
	f.Line = int32(s.zigzag())
	f.Tid = int(s.zigzag())
	n := s.uvarint()
	if s.err != nil {
		return nil
	}
	if n > uint64(len(s.b)-s.i) { // each frame is ≥1 byte
		s.fail("stack depth out of range")
		return nil
	}
	for k := uint64(0); k < n; k++ {
		f.Stack = append(f.Stack, s.str())
	}
	if s.err != nil {
		return nil
	}
	return f
}

// --- record payload codec -------------------------------------------

// recordHeader is the parsed self-describing prefix of a payload; the
// body (RLE reference stream or delta ops) follows at bodyOff.
type recordHeader struct {
	kind    byte
	seq     uint64
	key     uint64
	sig     *vm.Failure
	meta    Meta
	rawLen  uint64
	bodyOff int
}

func encodePayload(kind byte, seq, key uint64, sig *vm.Failure, meta Meta, rawLen uint64, body []byte) []byte {
	dst := make([]byte, 0, 64+len(body))
	dst = append(dst, kind)
	dst = putUvarint(dst, seq)
	var kb [8]byte
	binary.LittleEndian.PutUint64(kb[:], key)
	dst = append(dst, kb[:]...)
	dst = encodeFailure(dst, sig)
	dst = putString(dst, meta.App)
	dst = putZigzag(dst, int64(meta.Machine))
	dst = putZigzag(dst, int64(meta.Version))
	dst = putZigzag(dst, meta.Seed)
	dst = putZigzag(dst, meta.Instrs)
	dst = putUvarint(dst, meta.Lost)
	dst = putUvarint(dst, rawLen)
	return append(dst, body...)
}

func parseHeader(payload []byte) (recordHeader, error) {
	var h recordHeader
	s := &byteScanner{b: payload}
	h.kind = s.byte()
	h.seq = s.uvarint()
	if s.err == nil && s.i+8 > len(payload) {
		s.fail("truncated key")
	}
	if s.err == nil {
		h.key = binary.LittleEndian.Uint64(payload[s.i:])
		s.i += 8
	}
	h.sig = s.failure()
	h.meta.App = s.str()
	h.meta.Machine = int(s.zigzag())
	h.meta.Version = int(s.zigzag())
	h.meta.Seed = s.zigzag()
	h.meta.Instrs = s.zigzag()
	h.meta.Lost = s.uvarint()
	h.rawLen = s.uvarint()
	h.bodyOff = s.i
	if s.err != nil {
		return h, s.err
	}
	if h.kind != KindReference && h.kind != KindDelta {
		return h, fmt.Errorf("tracestore: unknown record kind %d", h.kind)
	}
	return h, nil
}

// --- frame write / recovery scan ------------------------------------

func appendFrame(f *os.File, off int64, payload []byte) (int64, error) {
	var hdr [frameHeaderSize]byte
	copy(hdr[:4], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	if _, err := f.WriteAt(hdr[:], off); err != nil {
		return off, err
	}
	if _, err := f.WriteAt(payload, off+frameHeaderSize); err != nil {
		return off, err
	}
	return off + frameHeaderSize + int64(len(payload)), nil
}

// scannedRecord is one fully framed, CRC-valid record found by the
// recovery scan.
type scannedRecord struct {
	off  int64 // payload offset in the segment file
	plen int
	hdr  recordHeader
}

// scanSegment walks the segment's frames. It returns the valid
// records, the offset of the first byte after the last valid frame
// (the truncation point when torn is true), and whether a torn or
// corrupt tail was found.
func scanSegment(f *os.File, size int64) (recs []scannedRecord, good int64, torn bool, err error) {
	var off int64
	var hdr [frameHeaderSize]byte
	for off+frameHeaderSize <= size {
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return recs, off, true, nil
		}
		if [4]byte(hdr[:4]) != segMagic {
			return recs, off, true, nil
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[4:8]))
		if plen > maxPayload || off+frameHeaderSize+plen > size {
			return recs, off, true, nil
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+frameHeaderSize); err != nil {
			return recs, off, true, nil
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[8:12]) {
			return recs, off, true, nil
		}
		rh, perr := parseHeader(payload)
		if perr != nil {
			// CRC-valid but unparseable: written by a future/foreign
			// format. Treat like a torn tail — keep everything before
			// it.
			return recs, off, true, nil
		}
		recs = append(recs, scannedRecord{off: off + frameHeaderSize, plen: int(plen), hdr: rh})
		off += frameHeaderSize + plen
	}
	if off != size {
		return recs, off, true, nil // trailing partial frame header
	}
	return recs, off, false, nil
}

// listSegments returns the segment ids present in dir, sorted.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		if id, ok := parseSegName(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

func openSegFile(dir string, id int) (*os.File, int64, error) {
	f, err := os.OpenFile(filepath.Join(dir, segName(id)), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, st.Size(), nil
}

// sectionReader returns a reader over [off, off+n) of f. Records are
// immutable once written, so concurrent sections are safe.
func sectionReader(f *os.File, off int64, n int) io.Reader {
	return io.NewSectionReader(f, off, int64(n))
}
