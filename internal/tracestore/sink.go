package tracestore

import (
	"sync/atomic"

	"execrecon/internal/prod"
)

// ArchiveSink adapts a Store to prod.TraceSink: production machines
// ship failing runs straight into the persistent archive instead of a
// live analysis channel. This is the deferred-analysis deployment
// shape — the fleet keeps archiving reoccurrences around the clock,
// and reconstruction pipelines drain the store on their own schedule
// (or replay it after a crash).
//
// Emit is safe for concurrent use by any number of machines; the
// store serializes appends internally. A message whose signature
// cannot be archived (store closed, disk error) is counted and
// reported dropped, matching the TraceSink contract.
type ArchiveSink struct {
	Store *Store

	appended atomic.Int64
	dropped  atomic.Int64
}

// Emit implements prod.TraceSink.
func (a *ArchiveSink) Emit(msg *prod.TraceMsg) bool {
	if msg == nil || msg.Failure == nil {
		a.dropped.Add(1)
		return false
	}
	meta := Meta{
		App:     msg.App,
		Machine: msg.Machine,
		Version: msg.Version,
		Seed:    msg.Seed,
		Instrs:  msg.Instrs,
	}
	if _, err := a.Store.AppendRing(msg.Failure, meta, msg.Ring); err != nil {
		a.dropped.Add(1)
		return false
	}
	a.appended.Add(1)
	return true
}

// Appended returns the number of messages archived so far.
func (a *ArchiveSink) Appended() int64 { return a.appended.Load() }

// Dropped returns the number of messages rejected at the boundary.
func (a *ArchiveSink) Dropped() int64 { return a.dropped.Load() }

var _ prod.TraceSink = (*ArchiveSink)(nil)
