package tracestore

import (
	"fmt"

	"execrecon/internal/core"
	"execrecon/internal/ir"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

// Source is a core.ReoccurrenceSource that routes every traced
// reoccurrence through the archive: the failing run is recorded, its
// raw ring bytes are appended to the store (delta-compressed against
// the signature's reference stream), and the occurrence handed to the
// pipeline decodes straight back off the segment log through the
// streaming reader — the pipeline's symbolic executor never sees an
// in-memory event slice.
//
// This is both the persistence deployment shape (`er run -store`,
// `er reproduce -store -replay-store`) and the verdict-parity harness
// of the erbench tracestore experiment: the only difference from the
// in-memory GenSource path is the round trip through the archive, so
// any verdict divergence is a store bug.
//
// Untraced occurrences (the deferred-tracing phase) are passed through
// without archiving: an empty stream must not become a signature's
// reference, or every later delta would degenerate to literals.
type Source struct {
	// Store receives every traced occurrence.
	Store *Store
	// Gen supplies production inputs; at least some runs must fail.
	Gen core.WorkloadGen
	// App tags archived records' metadata.
	App string

	runIdx  int
	version int
	lastDep *ir.Module
}

// Next implements core.ReoccurrenceSource.
func (s *Source) Next(req core.SourceRequest) (*core.Occurrence, error) {
	if s.Store == nil {
		return nil, fmt.Errorf("tracestore: Source has no store")
	}
	if s.Gen == nil {
		return nil, fmt.Errorf("tracestore: Source has no workload generator")
	}
	// Each distinct deployed module is a new rollout version, mirroring
	// the fleet's deployment counter in the archived metadata.
	if req.Deployed != s.lastDep {
		if s.lastDep != nil {
			s.version++
		}
		s.lastDep = req.Deployed
	}
	maxRuns := req.MaxRuns
	if maxRuns <= 0 {
		maxRuns = 1000
	}
	for tries := 0; tries < maxRuns; tries++ {
		w, seed := s.Gen.Run(s.runIdx)
		s.runIdx++
		if !req.Traced {
			res := vm.New(req.Deployed, vm.Config{Input: w, Seed: seed}).Run(req.Entry)
			if res.Failure == nil {
				continue
			}
			if req.Signature != nil && !res.Failure.SameSignature(req.Signature) {
				continue
			}
			return &core.Occurrence{Result: res, Seed: seed}, nil
		}
		ring := pt.NewRing(req.RingSize)
		enc := pt.NewEncoder(ring)
		res := vm.New(req.Deployed, vm.Config{Input: w, Tracer: enc, Seed: seed}).Run(req.Entry)
		if res.Failure == nil {
			continue
		}
		if req.Signature != nil && !res.Failure.SameSignature(req.Signature) {
			continue // a different bug; keep waiting for ours
		}
		enc.Finish()
		seq, err := s.Store.AppendRing(res.Failure, Meta{
			App:     s.App,
			Version: s.version,
			Seed:    seed,
			Instrs:  res.Stats.Instrs,
		}, ring)
		if err != nil {
			return nil, fmt.Errorf("tracestore: archive occurrence: %w", err)
		}
		r, err := s.Store.OpenEvents(KeyOf(res.Failure), seq)
		if err != nil {
			return nil, fmt.Errorf("tracestore: reopen archived occurrence: %w", err)
		}
		if r.Truncated() {
			return nil, fmt.Errorf("tracestore: trace ring overflowed (%d bytes lost); increase RingSize",
				r.Info().Meta.Lost)
		}
		return &core.Occurrence{Events: r, Result: res, Seed: seed}, nil
	}
	return nil, fmt.Errorf("tracestore: failure did not reoccur within %d runs", maxRuns)
}

// ReplaySource replays already-archived occurrences of one signature
// in sequence order — `er reproduce -replay-store`: reconstruction
// driven purely from the archive, no production runs at all. Each
// Next pops the next record whose deployment version matches the
// request's rollout epoch (tracked the same way as Source.version);
// it fails when the archive runs out of matching records, which is
// the archive's analog of "the failure stopped reoccurring".
type ReplaySource struct {
	Store *Store
	// Key selects the signature to replay.
	Key uint64

	nextSeq uint64
	version int
	lastDep *ir.Module
}

// Next implements core.ReoccurrenceSource.
func (r *ReplaySource) Next(req core.SourceRequest) (*core.Occurrence, error) {
	if r.Store == nil {
		return nil, fmt.Errorf("tracestore: ReplaySource has no store")
	}
	sig := r.Store.Sig(r.Key)
	if sig == nil {
		return nil, fmt.Errorf("tracestore: no archived records for key %#x", r.Key)
	}
	if req.Deployed != r.lastDep {
		if r.lastDep != nil {
			r.version++
		}
		r.lastDep = req.Deployed
	}
	if req.Signature != nil && !sig.SameSignature(req.Signature) {
		return nil, fmt.Errorf("tracestore: archived signature %v does not match requested %v", sig, req.Signature)
	}
	total := uint64(r.Store.Count(r.Key))
	for ; r.nextSeq < total; r.nextSeq++ {
		rd, err := r.Store.OpenEvents(r.Key, r.nextSeq)
		if err != nil {
			return nil, fmt.Errorf("tracestore: replay seq %d: %w", r.nextSeq, err)
		}
		info := rd.Info()
		if info.Meta.Version != r.version || info.Meta.Lost > 0 {
			continue // recorded on a different rollout, or wrapped
		}
		occ := &core.Occurrence{
			Result: &vm.Result{
				Failure: sig,
				Stats:   vm.Stats{Instrs: info.Meta.Instrs},
			},
			Seed: info.Meta.Seed,
		}
		if info.RawLen > 0 {
			// Even when the loop asked for an untraced occurrence the
			// archived trace is a strict superset — hand it over.
			occ.Events = rd
		} else if req.Traced {
			continue // untraced record cannot satisfy a traced request
		}
		r.nextSeq++
		return occ, nil
	}
	return nil, fmt.Errorf("tracestore: archive exhausted for key %#x at rollout v%d (%d records)",
		r.Key, r.version, total)
}

var (
	_ core.ReoccurrenceSource = (*Source)(nil)
	_ core.ReoccurrenceSource = (*ReplaySource)(nil)
)
