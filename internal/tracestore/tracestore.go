// Package tracestore is the persistent, delta-compressed trace
// archive: an append-only, chunked segment log that stores every
// ingested failure-reoccurrence PT blob, keyed by failure signature.
//
// ER's whole premise is that the same failure reoccurs with nearly
// identical control flow, and the store exploits exactly that
// redundancy: the first occurrence archived under a signature becomes
// the bucket's *reference* stream (RLE-packed); every subsequent
// reoccurrence is stored as an rsync-style delta — copy ranges into
// the reference plus RLE-packed literal runs — which collapses
// near-identical traces to a handful of bytes. Storage cost is what
// makes always-on recording deployable (O'Callahan et al.), and the
// failure signature is the natural archival key (Joshy et al.).
//
// Properties:
//
//   - Append-only chunked segment log (seg-NNNNNNNN.log), records
//     framed with magic + length + CRC32. A crash tears at most the
//     tail of the last segment; Open truncates the torn tail and
//     keeps every fully framed record — recovery is never fatal.
//   - Streaming reads: OpenEvents returns a pt.EventSource that
//     reconstructs the raw stream op-by-op from disk (copy ranges
//     served from the shared per-bucket reference) and decodes PT
//     packets incrementally, feeding shepherded symbolic execution
//     without ever materializing the full trace in memory.
//   - Background compaction of retired buckets: once a failure is
//     reconstructed, Retire marks its bucket and compaction rewrites
//     the log keeping only the bucket's reference and final record.
//
// The store slots in at two points of the fleet: internal/fleet uses
// it as the spill path for cold/backlogged buckets (hot traces stay
// in RAM; overflow replays from the archive), and internal/prod
// machines can ship to an archive (ArchiveSink) instead of a live
// channel.
package tracestore

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"

	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

// Options tunes a store.
type Options struct {
	// SegmentBytes rolls the active segment once it exceeds this size
	// (default 4 MB).
	SegmentBytes int64
	// BlockSize is the delta-matching granularity (default 32 bytes).
	BlockSize int
	// AutoCompact runs compaction in a background goroutine whenever
	// buckets are retired. Off by default (call Compact explicitly).
	AutoCompact bool
	// Sync fsyncs the active segment after every append. Off by
	// default: the format already confines crash damage to a torn,
	// recoverable tail, so fsync only narrows the loss window.
	Sync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.BlockSize <= 0 {
		o.BlockSize = defaultBlockSize
	}
	return o
}

// Meta is the per-record run metadata a consumer needs to rebuild an
// occurrence: deployment version (stale-rollout filtering), scheduler
// seed (verification replay), instruction count, and the ring bytes
// lost to wrapping (decode resynchronization).
type Meta struct {
	App     string
	Machine int
	Version int
	Seed    int64
	Instrs  int64
	Lost    uint64
}

// RecordInfo describes one archived occurrence.
type RecordInfo struct {
	Key         uint64
	Seq         uint64
	Kind        byte // KindReference or KindDelta
	Meta        Meta
	RawLen      uint64 // raw packet-stream bytes as shipped
	StoredBytes int64  // framed bytes on disk
}

// KeyOf returns the archival key of a failure: a 64-bit FNV-1a over
// exactly the fields vm.Failure.SameSignature compares. Records of
// signatures that collide still carry their full signature, so
// consumers can re-check.
func KeyOf(f *vm.Failure) uint64 {
	h := fnv.New64a()
	var b [4]byte
	put32 := func(v uint32) {
		b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		h.Write(b[:4])
	}
	put32(uint32(f.Kind))
	h.Write([]byte(f.Func))
	h.Write([]byte{0})
	put32(uint32(f.InstrID))
	for _, fn := range f.Stack {
		h.Write([]byte(fn))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Stats is a point-in-time view of the store.
type Stats struct {
	// Segments is the live segment-file count.
	Segments int
	// Records/References/Deltas count live records.
	Records    int64
	References int64
	Deltas     int64
	// Appends counts records appended over the store's lifetime since
	// Open (compaction does not decrement it).
	Appends int64
	// RawBytes is the sum of live records' raw (as-shipped) stream
	// sizes; StoredBytes the framed bytes they occupy on disk.
	RawBytes    int64
	StoredBytes int64
	// Recoveries counts torn tails truncated at Open.
	Recoveries int64
	// Compactions counts completed compaction passes;
	// ReclaimedBytes the disk bytes they released.
	Compactions    int64
	ReclaimedBytes int64
}

// Ratio returns the raw-vs-stored compression ratio (0 when empty).
func (s Stats) Ratio() float64 {
	if s.StoredBytes == 0 {
		return 0
	}
	return float64(s.RawBytes) / float64(s.StoredBytes)
}

type recordRef struct {
	seg    int
	off    int64 // payload offset in segment file
	plen   int
	hdrLen int // body starts at off+hdrLen
	kind   byte
	seq    uint64
	meta   Meta
	rawLen uint64
}

func (r recordRef) storedBytes() int64 { return frameHeaderSize + int64(r.plen) }

type keyState struct {
	sig     *vm.Failure
	recs    []recordRef // ascending seq
	refRaw  []byte      // lazily cached reference raw stream
	nextSeq uint64
	retired bool
}

type segfile struct {
	id   int
	f    *os.File
	size int64
}

// Store is a trace archive rooted at one directory. All methods are
// safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	segs    map[int]*segfile
	cur     *segfile
	nextSeg int
	keys    map[uint64]*keyState
	zombies []*os.File // unlinked by compaction, closed at Close
	stats   Stats
	closed  bool

	compactCh chan struct{}
	doneCh    chan struct{}
	wg        sync.WaitGroup
}

// Open opens (creating if needed) the store rooted at dir, scanning
// every segment and truncating any torn tail left by a crash. All
// fully framed records survive recovery.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{
		dir:       dir,
		opts:      opts,
		segs:      make(map[int]*segfile),
		keys:      make(map[uint64]*keyState),
		compactCh: make(chan struct{}, 1),
		doneCh:    make(chan struct{}),
	}
	ids, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	for _, id := range ids {
		f, size, err := openSegFile(dir, id)
		if err != nil {
			s.closeAll()
			return nil, fmt.Errorf("tracestore: %w", err)
		}
		recs, good, torn, err := scanSegment(f, size)
		if err != nil {
			f.Close()
			s.closeAll()
			return nil, fmt.Errorf("tracestore: scan %s: %w", segName(id), err)
		}
		if torn {
			if err := f.Truncate(good); err != nil {
				f.Close()
				s.closeAll()
				return nil, fmt.Errorf("tracestore: truncate torn tail of %s: %w", segName(id), err)
			}
			size = good
			s.stats.Recoveries++
		}
		sf := &segfile{id: id, f: f, size: size}
		s.segs[id] = sf
		if id >= s.nextSeg {
			s.nextSeg = id + 1
		}
		for _, r := range recs {
			s.indexRecord(sf.id, r)
		}
	}
	// Resume appending into the last segment if it has headroom.
	if len(ids) > 0 {
		last := s.segs[ids[len(ids)-1]]
		if last.size < opts.SegmentBytes {
			s.cur = last
		}
	}
	for _, ks := range s.keys {
		sort.Slice(ks.recs, func(i, j int) bool { return ks.recs[i].seq < ks.recs[j].seq })
		ks.nextSeq = 0
		if n := len(ks.recs); n > 0 {
			ks.nextSeq = ks.recs[n-1].seq + 1
		}
	}
	if opts.AutoCompact {
		s.wg.Add(1)
		go s.compactor()
	}
	return s, nil
}

// indexRecord adds one scanned record to the in-memory index,
// dropping duplicate (key, seq) pairs (possible after a crash mid-
// compaction, which copies records before deleting old segments).
func (s *Store) indexRecord(seg int, r scannedRecord) {
	h := r.hdr
	ks := s.keys[h.key]
	if ks == nil {
		ks = &keyState{sig: h.sig}
		s.keys[h.key] = ks
	}
	for _, existing := range ks.recs {
		if existing.seq == h.seq {
			return
		}
	}
	ref := recordRef{
		seg:    seg,
		off:    r.off,
		plen:   r.plen,
		hdrLen: h.bodyOff,
		kind:   h.kind,
		seq:    h.seq,
		meta:   h.meta,
		rawLen: h.rawLen,
	}
	ks.recs = append(ks.recs, ref)
	s.accountAdd(ref)
}

func (s *Store) accountAdd(r recordRef) {
	s.stats.Records++
	if r.kind == KindReference {
		s.stats.References++
	} else {
		s.stats.Deltas++
	}
	s.stats.RawBytes += int64(r.rawLen)
	s.stats.StoredBytes += r.storedBytes()
}

func (s *Store) accountRemove(r recordRef) {
	s.stats.Records--
	if r.kind == KindReference {
		s.stats.References--
	} else {
		s.stats.Deltas--
	}
	s.stats.RawBytes -= int64(r.rawLen)
	s.stats.StoredBytes -= r.storedBytes()
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Segments = len(s.segs)
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes every segment. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.doneCh)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeAll()
}

func (s *Store) closeAll() error {
	var first error
	for _, sf := range s.segs {
		if err := sf.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, f := range s.zombies {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = map[int]*segfile{}
	s.zombies = nil
	s.cur = nil
	return first
}

// rollLocked ensures an active segment with headroom exists.
func (s *Store) rollLocked() error {
	if s.cur != nil && s.cur.size < s.opts.SegmentBytes {
		return nil
	}
	f, size, err := openSegFile(s.dir, s.nextSeg)
	if err != nil {
		return err
	}
	sf := &segfile{id: s.nextSeg, f: f, size: size}
	s.segs[sf.id] = sf
	s.nextSeg++
	s.cur = sf
	return nil
}

// appendPayloadLocked frames payload into the active segment and
// returns its segment id and payload offset.
func (s *Store) appendPayloadLocked(payload []byte) (int, int64, error) {
	if err := s.rollLocked(); err != nil {
		return 0, 0, err
	}
	sf := s.cur
	off := sf.size
	end, err := appendFrame(sf.f, off, payload)
	if err != nil {
		return 0, 0, err
	}
	if s.opts.Sync {
		if err := sf.f.Sync(); err != nil {
			return 0, 0, err
		}
	}
	sf.size = end
	return sf.id, off + frameHeaderSize, nil
}

// Append archives one occurrence: sig is the failure signature (the
// archival key), meta the run metadata, raw the PT packet stream as
// shipped (Ring.Bytes data; meta.Lost carries the wrap loss). The
// first occurrence of a signature becomes the bucket's reference;
// later ones are delta-encoded against it. Returns the record's
// per-key sequence number (0 = reference).
func (s *Store) Append(sig *vm.Failure, meta Meta, raw []byte) (uint64, error) {
	if sig == nil {
		return 0, fmt.Errorf("tracestore: nil failure signature")
	}
	key := KeyOf(sig)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("tracestore: store is closed")
	}
	ks := s.keys[key]
	if ks == nil {
		ks = &keyState{sig: sig}
		s.keys[key] = ks
	}
	seq := ks.nextSeq

	var kind byte
	var body []byte
	if seq == 0 {
		kind = KindReference
		body = packRLE(nil, raw)
		ks.refRaw = append([]byte(nil), raw...)
	} else {
		kind = KindDelta
		refRaw, err := s.refRawLocked(key, ks)
		if err != nil {
			return 0, err
		}
		body = deltaEncode(nil, refRaw, raw, s.opts.BlockSize)
	}
	payload := encodePayload(kind, seq, key, sig, meta, uint64(len(raw)), body)
	seg, off, err := s.appendPayloadLocked(payload)
	if err != nil {
		return 0, fmt.Errorf("tracestore: append: %w", err)
	}
	hdrLen := len(payload) - len(body)
	ref := recordRef{
		seg:    seg,
		off:    off,
		plen:   len(payload),
		hdrLen: hdrLen,
		kind:   kind,
		seq:    seq,
		meta:   meta,
		rawLen: uint64(len(raw)),
	}
	ks.recs = append(ks.recs, ref)
	ks.nextSeq = seq + 1
	s.accountAdd(ref)
	s.stats.Appends++
	return seq, nil
}

// AppendRing is Append for a shipped ring blob: it snapshots the ring
// (Ring.Bytes copies, so the ring may be reused immediately) and
// records the wrap loss in the metadata.
func (s *Store) AppendRing(sig *vm.Failure, meta Meta, ring *pt.Ring) (uint64, error) {
	var raw []byte
	if ring != nil {
		var lost uint64
		raw, lost = ring.Bytes()
		meta.Lost = lost
	}
	return s.Append(sig, meta, raw)
}

// refRawLocked returns the key's reference raw stream, loading (and
// caching) it from disk if the store was reopened.
func (s *Store) refRawLocked(key uint64, ks *keyState) ([]byte, error) {
	if ks.refRaw != nil {
		return ks.refRaw, nil
	}
	if len(ks.recs) == 0 || ks.recs[0].kind != KindReference {
		return nil, fmt.Errorf("tracestore: key %#x has no reference record", key)
	}
	raw, err := s.materializeLocked(ks, ks.recs[0])
	if err != nil {
		return nil, err
	}
	ks.refRaw = raw
	return raw, nil
}

// Keys returns every archived signature key, sorted.
func (s *Store) Keys() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.keys))
	for k := range s.keys {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Sig returns the failure signature archived under key (nil if
// unknown).
func (s *Store) Sig(key uint64) *vm.Failure {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ks := s.keys[key]; ks != nil {
		return ks.sig
	}
	return nil
}

// Count returns the number of live records under key.
func (s *Store) Count(key uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ks := s.keys[key]; ks != nil {
		return len(ks.recs)
	}
	return 0
}

// Records lists the live records under key in sequence order.
func (s *Store) Records(key uint64) []RecordInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := s.keys[key]
	if ks == nil {
		return nil
	}
	out := make([]RecordInfo, 0, len(ks.recs))
	for _, r := range ks.recs {
		out = append(out, RecordInfo{
			Key: key, Seq: r.seq, Kind: r.kind, Meta: r.meta,
			RawLen: r.rawLen, StoredBytes: r.storedBytes(),
		})
	}
	return out
}

// lookupLocked finds the record with the given seq under key.
func (s *Store) lookupLocked(key, seq uint64) (*keyState, recordRef, error) {
	ks := s.keys[key]
	if ks == nil {
		return nil, recordRef{}, fmt.Errorf("tracestore: unknown key %#x", key)
	}
	for _, r := range ks.recs {
		if r.seq == seq {
			return ks, r, nil
		}
	}
	return nil, recordRef{}, fmt.Errorf("tracestore: key %#x has no record seq %d", key, seq)
}

// materializeLocked reconstructs a record's full raw stream.
func (s *Store) materializeLocked(ks *keyState, r recordRef) ([]byte, error) {
	sf := s.segs[r.seg]
	if sf == nil {
		return nil, fmt.Errorf("tracestore: record references missing segment %d", r.seg)
	}
	body := sectionReader(sf.f, r.off+int64(r.hdrLen), r.plen-r.hdrLen)
	bodyBytes := make([]byte, r.plen-r.hdrLen)
	if _, err := io.ReadFull(body, bodyBytes); err != nil {
		return nil, fmt.Errorf("tracestore: read record: %w", err)
	}
	if r.kind == KindReference {
		return unpackRLE(bodyBytes)
	}
	refRaw, err := s.refRawLocked(KeyOf(ks.sig), ks)
	if err != nil {
		return nil, err
	}
	return deltaApply(refRaw, bodyBytes)
}

// ReadRaw reconstructs and returns the full raw packet stream of one
// archived occurrence, plus its record info. Prefer OpenEvents for
// analysis — ReadRaw materializes the stream.
func (s *Store) ReadRaw(key, seq uint64) ([]byte, RecordInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks, r, err := s.lookupLocked(key, seq)
	if err != nil {
		return nil, RecordInfo{}, err
	}
	raw, err := s.materializeLocked(ks, r)
	if err != nil {
		return nil, RecordInfo{}, err
	}
	return raw, RecordInfo{
		Key: key, Seq: r.seq, Kind: r.kind, Meta: r.meta,
		RawLen: r.rawLen, StoredBytes: r.storedBytes(),
	}, nil
}
