package tracestore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"execrecon/internal/ir"
	"execrecon/internal/prod"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

func testSig(fn string, id int32) *vm.Failure {
	return &vm.Failure{
		Kind: vm.FailNullDeref, Msg: "nil deref", Func: fn,
		InstrID: id, Line: 42, Tid: 1,
		Stack: []string{"main", fn},
	}
}

// makeRaw builds a deterministic raw PT packet stream of n packets
// from a seeded RNG. flips marks step indices whose TNT outcome is
// inverted — the reoccurrence analog: same control flow with a few
// divergent branches.
func makeRaw(seed int64, n int, flips map[int]bool) []byte {
	ring := pt.NewRing(1 << 22)
	enc := pt.NewEncoder(ring)
	rng := rand.New(rand.NewSource(seed))
	enc.Chunk(0, 0)
	for i := 0; i < n; i++ {
		switch rng.Intn(12) {
		case 0:
			enc.TIP(uint64(rng.Intn(1 << 20)))
		case 1:
			enc.PTW(int32(rng.Intn(16)), ir.W64, uint64(rng.Int63()))
		case 2:
			enc.PGD(uint64(rng.Intn(1000)))
		case 3:
			enc.Chunk(rng.Intn(4), uint64(i))
		default:
			taken := rng.Intn(2) == 1
			if flips[i] {
				taken = !taken
			}
			enc.TNT(taken)
		}
	}
	enc.Finish()
	raw, lost := ring.Bytes()
	if lost != 0 {
		panic("test ring wrapped")
	}
	return raw
}

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})

	sig := testSig("handler", 7)
	key := KeyOf(sig)
	const K = 8
	raws := make([][]byte, K)
	for i := 0; i < K; i++ {
		flips := map[int]bool{}
		if i > 0 {
			flips[100+i] = true // one divergent branch per reoccurrence
		}
		raws[i] = makeRaw(1, 2000, flips)
		seq, err := s.Append(sig, Meta{App: "app", Machine: i, Version: 1, Seed: int64(i)}, raws[i])
		if err != nil {
			t.Fatalf("Append #%d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append #%d: seq = %d", i, seq)
		}
	}
	if got := s.Count(key); got != K {
		t.Fatalf("Count = %d, want %d", got, K)
	}
	if sg := s.Sig(key); !sg.SameSignature(sig) {
		t.Fatalf("Sig mismatch: %v", sg)
	}
	for i := 0; i < K; i++ {
		raw, info, err := s.ReadRaw(key, uint64(i))
		if err != nil {
			t.Fatalf("ReadRaw(%d): %v", i, err)
		}
		if !bytes.Equal(raw, raws[i]) {
			t.Fatalf("ReadRaw(%d): reconstructed stream differs (%d vs %d bytes)", i, len(raw), len(raws[i]))
		}
		wantKind := KindDelta
		if i == 0 {
			wantKind = KindReference
		}
		if info.Kind != wantKind {
			t.Fatalf("record %d kind = %d, want %d", i, info.Kind, wantKind)
		}
		if info.Meta.Machine != i || info.Meta.Seed != int64(i) {
			t.Fatalf("record %d meta = %+v", i, info.Meta)
		}
	}
	st := s.Stats()
	if st.Records != K || st.References != 1 || st.Deltas != K-1 {
		t.Fatalf("stats = %+v", st)
	}
	// Near-identical reoccurrence streams must compress well: the
	// acceptance bar for the whole archive is >= 5x.
	if r := st.Ratio(); r < 5 {
		t.Fatalf("compression ratio %.2f < 5 (raw %d, stored %d)", r, st.RawBytes, st.StoredBytes)
	}
}

func TestOpenEventsStreamParity(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	sig := testSig("parity", 3)
	key := KeyOf(sig)
	raws := [][]byte{
		makeRaw(9, 1500, nil),
		makeRaw(9, 1500, map[int]bool{50: true, 700: true}),
		makeRaw(10, 300, nil), // genuinely different stream as a delta
	}
	for i, raw := range raws {
		if _, err := s.Append(sig, Meta{Seed: int64(i)}, raw); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	for i, raw := range raws {
		want, err := pt.DecodeBytes(raw, 0)
		if err != nil {
			t.Fatalf("DecodeBytes %d: %v", i, err)
		}
		r, err := s.OpenEvents(key, uint64(i))
		if err != nil {
			t.Fatalf("OpenEvents %d: %v", i, err)
		}
		cur := pt.NewCursor(want)
		n := 0
		for {
			we, ge := cur.Next(), r.Next()
			if (we == nil) != (ge == nil) {
				t.Fatalf("record %d: stream ended early at event %d (batch=%v stream=%v)", i, n, we, ge)
			}
			if we == nil {
				break
			}
			if *we != *ge {
				t.Fatalf("record %d event %d: batch %+v != stream %+v", i, n, *we, *ge)
			}
			n++
		}
		if err := r.Err(); err != nil {
			t.Fatalf("record %d: stream error: %v", i, err)
		}
		if r.Pos() != n {
			t.Fatalf("record %d: Pos = %d, want %d", i, r.Pos(), n)
		}
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 2 << 10}) // force multi-segment
	sigA, sigB := testSig("alpha", 1), testSig("beta", 2)
	var rawsA, rawsB [][]byte
	for i := 0; i < 5; i++ {
		ra := makeRaw(21, 800, map[int]bool{i * 7: true})
		rb := makeRaw(22, 800, map[int]bool{i * 11: true})
		rawsA, rawsB = append(rawsA, ra), append(rawsB, rb)
		if _, err := s.Append(sigA, Meta{Seed: int64(i)}, ra); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(sigB, Meta{Seed: int64(i)}, rb); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.Segments < 2 {
		t.Fatalf("want multiple segments, got %d", before.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openTest(t, dir, Options{SegmentBytes: 2 << 10})
	after := s2.Stats()
	if after.Records != before.Records || after.RawBytes != before.RawBytes || after.StoredBytes != before.StoredBytes {
		t.Fatalf("reopen stats drifted: before %+v after %+v", before, after)
	}
	for i, raw := range rawsA {
		got, _, err := s2.ReadRaw(KeyOf(sigA), uint64(i))
		if err != nil || !bytes.Equal(got, raw) {
			t.Fatalf("reopen ReadRaw(A,%d): err=%v equal=%v", i, err, bytes.Equal(got, raw))
		}
	}
	for i, raw := range rawsB {
		got, _, err := s2.ReadRaw(KeyOf(sigB), uint64(i))
		if err != nil || !bytes.Equal(got, raw) {
			t.Fatalf("reopen ReadRaw(B,%d): err=%v equal=%v", i, err, bytes.Equal(got, raw))
		}
	}
	// Appends resume with fresh sequence numbers.
	seq, err := s2.Append(sigA, Meta{}, rawsA[0])
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("resumed seq = %d, want 5", seq)
	}
}

// TestCrashRecoveryEveryOffset is the crash-tolerance sweep: the last
// segment is truncated at every byte offset, and Open must always
// succeed, keep exactly the records whose frames fit in the prefix,
// and discard the torn tail.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	base := t.TempDir()
	s := openTest(t, base, Options{})
	sig := testSig("crash", 5)
	key := KeyOf(sig)
	var frames []int64 // cumulative end offset of each record's frame
	for i := 0; i < 4; i++ {
		if _, err := s.Append(sig, Meta{Seed: int64(i)}, makeRaw(31, 120, map[int]bool{i: true})); err != nil {
			t.Fatal(err)
		}
		st := s.Stats()
		frames = append(frames, st.StoredBytes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(base, segName(0))
	full, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != frames[len(frames)-1] {
		t.Fatalf("segment size %d != accounted %d", len(full), frames[len(frames)-1])
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := filepath.Join(base, "cut")
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		wantRecs := 0
		for _, end := range frames {
			if int64(cut) >= end {
				wantRecs++
			}
		}
		st := s2.Stats()
		if int(st.Records) != wantRecs {
			s2.Close()
			t.Fatalf("cut=%d: %d records survived, want %d", cut, st.Records, wantRecs)
		}
		torn := wantRecs < len(frames) && (wantRecs == 0 && cut > 0 || wantRecs > 0 && int64(cut) > frames[wantRecs-1])
		if torn && st.Recoveries != 1 {
			s2.Close()
			t.Fatalf("cut=%d: Recoveries = %d, want 1", cut, st.Recoveries)
		}
		// Every surviving record must reconstruct byte-exactly.
		for i := 0; i < wantRecs; i++ {
			if _, _, err := s2.ReadRaw(key, uint64(i)); err != nil {
				s2.Close()
				t.Fatalf("cut=%d: ReadRaw(%d): %v", cut, i, err)
			}
		}
		// The torn tail is gone from disk, not just from the index.
		if fi, err := os.Stat(filepath.Join(dir, segName(0))); err == nil {
			wantSize := int64(0)
			if wantRecs > 0 {
				wantSize = frames[wantRecs-1]
			}
			if fi.Size() != wantSize {
				s2.Close()
				t.Fatalf("cut=%d: tail not truncated: size %d, want %d", cut, fi.Size(), wantSize)
			}
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
	}
}

// TestDeltaRoundTripProperty fuzzes the delta codec with random
// reference/target pairs at several similarity levels: encode then
// apply must reproduce the target byte-exactly.
func TestDeltaRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		rng.Read(b)
		return b
	}
	mutate := func(ref []byte, edits int) []byte {
		tgt := append([]byte(nil), ref...)
		for e := 0; e < edits && len(tgt) > 0; e++ {
			switch rng.Intn(3) {
			case 0: // flip
				tgt[rng.Intn(len(tgt))] ^= byte(1 + rng.Intn(255))
			case 1: // insert
				at := rng.Intn(len(tgt) + 1)
				ins := randBytes(1 + rng.Intn(40))
				tgt = append(tgt[:at], append(ins, tgt[at:]...)...)
			case 2: // delete
				at := rng.Intn(len(tgt))
				n := 1 + rng.Intn(40)
				if at+n > len(tgt) {
					n = len(tgt) - at
				}
				tgt = append(tgt[:at], tgt[at+n:]...)
			}
		}
		return tgt
	}
	for trial := 0; trial < 200; trial++ {
		ref := randBytes(rng.Intn(4096))
		var target []byte
		switch trial % 4 {
		case 0:
			target = append([]byte(nil), ref...) // identical
		case 1:
			target = mutate(ref, 1+rng.Intn(8)) // near-identical
		case 2:
			target = randBytes(rng.Intn(4096)) // unrelated
		case 3:
			target = mutate(ref, 1+rng.Intn(64)) // heavily edited
		}
		ops := deltaEncode(nil, ref, target, 0)
		got, err := deltaApply(ref, ops)
		if err != nil {
			t.Fatalf("trial %d: apply: %v", trial, err)
		}
		if !bytes.Equal(got, target) {
			t.Fatalf("trial %d: round trip mismatch (%d vs %d bytes)", trial, len(got), len(target))
		}
	}
	// Identical streams must collapse to a single copy op, the whole
	// point of reoccurrence archival.
	ref := randBytes(8192)
	ops := deltaEncode(nil, ref, ref, 0)
	if len(ops) > 32 {
		t.Fatalf("identical-stream delta is %d bytes", len(ops))
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 16 << 10})
	sigHot, sigDone := testSig("hot", 1), testSig("done", 2)
	keyHot, keyDone := KeyOf(sigHot), KeyOf(sigDone)
	var hotRaws, doneRaws [][]byte
	for i := 0; i < 5; i++ {
		rh := makeRaw(41, 600, map[int]bool{i: true})
		rd := makeRaw(42, 600, map[int]bool{i * 3: true})
		hotRaws, doneRaws = append(hotRaws, rh), append(doneRaws, rd)
		if _, err := s.Append(sigHot, Meta{Seed: int64(i)}, rh); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Append(sigDone, Meta{Seed: int64(i)}, rd); err != nil {
			t.Fatal(err)
		}
	}

	// A reader opened before compaction must survive the segment swap
	// (old files are unlinked but handles stay open until Close).
	early, err := s.OpenEvents(keyDone, 2)
	if err != nil {
		t.Fatal(err)
	}

	s.Retire(keyDone)
	if !s.Retired(keyDone) {
		t.Fatal("Retired = false after Retire")
	}
	res, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.DroppedRecords != 3 {
		t.Fatalf("DroppedRecords = %d, want 3", res.DroppedRecords)
	}
	if res.ReclaimedBytes <= 0 {
		t.Fatalf("ReclaimedBytes = %d", res.ReclaimedBytes)
	}

	// Retired bucket keeps the audit pair: reference + final record.
	recs := s.Records(keyDone)
	if len(recs) != 2 || recs[0].Seq != 0 || recs[1].Seq != 4 {
		t.Fatalf("retired bucket records = %+v", recs)
	}
	for _, want := range []struct {
		seq uint64
		raw []byte
	}{{0, doneRaws[0]}, {4, doneRaws[4]}} {
		got, _, err := s.ReadRaw(keyDone, want.seq)
		if err != nil || !bytes.Equal(got, want.raw) {
			t.Fatalf("post-compact ReadRaw(done,%d): err=%v equal=%v", want.seq, err, bytes.Equal(got, want.raw))
		}
	}
	// The live bucket is untouched.
	for i, raw := range hotRaws {
		got, _, err := s.ReadRaw(keyHot, uint64(i))
		if err != nil || !bytes.Equal(got, raw) {
			t.Fatalf("post-compact ReadRaw(hot,%d): err=%v equal=%v", i, err, bytes.Equal(got, raw))
		}
	}
	// Interior record of the retired bucket is gone.
	if _, _, err := s.ReadRaw(keyDone, 2); err == nil {
		t.Fatal("interior record of retired bucket still readable via index")
	}
	// The pre-compaction reader still streams its (now unlinked) copy.
	want, err := pt.DecodeBytes(doneRaws[2], 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for early.Next() != nil {
		n++
	}
	if err := early.Err(); err != nil {
		t.Fatalf("zombie reader failed: %v", err)
	}
	wantN := len(want.Events)
	if want.Events[wantN-1].Kind == pt.EvEnd {
		wantN--
	}
	if n != wantN {
		t.Fatalf("zombie reader decoded %d events, want %d", n, wantN)
	}

	// Compaction survives a reopen (records were rewritten, not lost).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir, Options{})
	if got := s2.Count(keyDone); got != 2 {
		t.Fatalf("reopen after compact: Count(done) = %d, want 2", got)
	}
	if got := s2.Count(keyHot); got != 5 {
		t.Fatalf("reopen after compact: Count(hot) = %d, want 5", got)
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{AutoCompact: true})
	sig := testSig("auto", 9)
	key := KeyOf(sig)
	for i := 0; i < 4; i++ {
		if _, err := s.Append(sig, Meta{}, makeRaw(51, 400, map[int]bool{i: true})); err != nil {
			t.Fatal(err)
		}
	}
	s.Retire(key)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Stats().Compactions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := s.Count(key); got != 2 {
		t.Fatalf("Count = %d after auto compaction, want 2", got)
	}
}

func TestArchiveSink(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	sink := &ArchiveSink{Store: s}

	sig := testSig("sink", 11)
	ring := pt.NewRing(1 << 16)
	enc := pt.NewEncoder(ring)
	enc.Chunk(0, 0)
	for i := 0; i < 100; i++ {
		enc.TNT(i%3 == 0)
	}
	enc.Finish()

	msg := &prod.TraceMsg{
		App: "kv", Machine: 4, Version: 2, Ring: ring,
		Failure: sig, Seed: 1234, Instrs: 5678,
	}
	if !sink.Emit(msg) {
		t.Fatal("Emit rejected a valid message")
	}
	if sink.Emit(&prod.TraceMsg{Failure: nil}) {
		t.Fatal("Emit accepted a message without a failure")
	}
	if sink.Appended() != 1 || sink.Dropped() != 1 {
		t.Fatalf("sink counters: appended=%d dropped=%d", sink.Appended(), sink.Dropped())
	}

	key := KeyOf(sig)
	raw, info, err := s.ReadRaw(key, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, _ := ring.Bytes()
	if !bytes.Equal(raw, wantRaw) {
		t.Fatal("archived ring bytes differ")
	}
	m := info.Meta
	if m.App != "kv" || m.Machine != 4 || m.Version != 2 || m.Seed != 1234 || m.Instrs != 5678 {
		t.Fatalf("archived meta = %+v", m)
	}

	// Closed store: the sink reports the drop instead of erroring out.
	s.Close()
	if sink.Emit(msg) {
		t.Fatal("Emit accepted after store close")
	}
}

// TestConcurrentAppendRead exercises concurrent appends, streaming
// reads, and compaction under the race detector.
func TestConcurrentAppendRead(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{SegmentBytes: 32 << 10, AutoCompact: true})
	sigs := []*vm.Failure{testSig("w0", 1), testSig("w1", 2), testSig("w2", 3)}
	done := make(chan error, len(sigs))
	for w, sig := range sigs {
		go func(w int, sig *vm.Failure) {
			key := KeyOf(sig)
			for i := 0; i < 20; i++ {
				raw := makeRaw(int64(60+w), 200, map[int]bool{i: true})
				seq, err := s.Append(sig, Meta{Seed: int64(i)}, raw)
				if err != nil {
					done <- err
					return
				}
				r, err := s.OpenEvents(key, seq)
				if err != nil {
					done <- err
					return
				}
				for r.Next() != nil {
				}
				if err := r.Err(); err != nil {
					done <- err
					return
				}
				if i == 10 {
					s.Retire(key)
				}
			}
			done <- nil
		}(w, sig)
	}
	for range sigs {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestKeyOf(t *testing.T) {
	a := testSig("f", 1)
	b := testSig("f", 1)
	b.Msg, b.Line, b.Tid = "different message", 99, 7 // not part of the signature
	if KeyOf(a) != KeyOf(b) {
		t.Fatal("KeyOf varies on non-signature fields")
	}
	for _, diff := range []*vm.Failure{
		testSig("g", 1),
		testSig("f", 2),
		{Kind: vm.FailAbort, Func: "f", InstrID: 1, Stack: []string{"main", "f"}},
		{Kind: vm.FailNullDeref, Func: "f", InstrID: 1, Stack: []string{"main"}},
	} {
		if KeyOf(a) == KeyOf(diff) {
			t.Fatalf("KeyOf collision with %+v", diff)
		}
	}
}

func TestUntracedRecord(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir, Options{})
	sig := testSig("untraced", 13)
	sink := &ArchiveSink{Store: s}
	if !sink.Emit(&prod.TraceMsg{App: "x", Failure: sig}) {
		t.Fatal("Emit rejected an untraced message")
	}
	raw, info, err := s.ReadRaw(KeyOf(sig), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 0 || info.RawLen != 0 {
		t.Fatalf("untraced record has %d raw bytes", len(raw))
	}
}
