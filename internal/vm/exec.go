package vm

import (
	"fmt"

	"execrecon/internal/ir"
)

// Object-packed addresses: object ID in the high 32 bits, byte offset
// in the low 32 bits. Object 0 is the NULL object.
const objShift = 32

// PackAddr builds an address from object ID and offset.
func PackAddr(obj uint32, off uint32) uint64 { return uint64(obj)<<objShift | uint64(off) }

// SplitAddr splits an address into object ID and offset.
func SplitAddr(a uint64) (uint32, uint32) { return uint32(a >> objShift), uint32(a) }

type object struct {
	data   []byte
	freed  bool
	global bool
	heap   bool
}

type frame struct {
	fn       *ir.Func
	regs     []uint64
	blk, ii  int
	frameObj uint32
	retDst   int
}

type threadState uint8

const (
	thRunnable threadState = iota
	thBlockedLock
	thBlockedJoin
	thDone
)

type thread struct {
	id      int
	stack   []*frame
	state   threadState
	waitMu  uint64 // mutex id when blocked on lock
	waitTid int    // thread id when blocked on join
	retVal  uint64
	// sinceEvent counts instructions executed since the thread's
	// last trace event; it parameterizes PGD pause markers.
	sinceEvent uint64
}

// Machine executes a module under a Config. A Machine is single-use.
type Machine struct {
	mod  *ir.Module
	cfg  Config
	objs []*object
	thrs []*thread
	mus  map[uint64]int // mutex id -> owner tid (-1 free)

	out     []uint64
	stats   Stats
	failure *Failure
	dump    *CoreDump
	rng     uint64
	now     uint64 // coarse timestamp counter
	lastTid int    // last traced thread (-1 before any chunk)
}

// New prepares a machine for mod. The module should be validated.
func New(mod *ir.Module, cfg Config) *Machine {
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = 200_000_000
	}
	if cfg.ChunkSize == 0 {
		cfg.ChunkSize = 1000
	}
	if cfg.MaxCallDepth == 0 {
		cfg.MaxCallDepth = 512
	}
	m := &Machine{
		mod:     mod,
		cfg:     cfg,
		mus:     make(map[uint64]int),
		rng:     uint64(cfg.Seed)*2862933555777941757 + 3037000493,
		lastTid: -1,
	}
	// Object 0 is NULL.
	m.objs = append(m.objs, &object{})
	for _, g := range mod.Globals {
		data := make([]byte, g.Size)
		copy(data, g.Init)
		m.objs = append(m.objs, &object{data: data, global: true})
	}
	return m
}

// GlobalObject returns the object ID of global gi.
func GlobalObject(gi int) uint32 { return uint32(gi + 1) }

func (m *Machine) nextRand() uint64 {
	m.rng ^= m.rng << 13
	m.rng ^= m.rng >> 7
	m.rng ^= m.rng << 17
	return m.rng
}

// Run executes function entry (usually "main") with the given integer
// arguments until exit, failure, or the step bound.
func (m *Machine) Run(entry string, args ...uint64) *Result {
	fn := m.mod.FuncByName(entry)
	if fn == nil {
		panic(fmt.Sprintf("vm: no function %q", entry))
	}
	t := &thread{id: 0}
	m.thrs = append(m.thrs, t)
	m.pushFrame(t, fn, args, -1)
	m.schedule()
	return &Result{Failure: m.failure, Output: m.out, Stats: m.stats, Dump: m.dump}
}

func (m *Machine) pushFrame(t *thread, fn *ir.Func, args []uint64, retDst int) {
	f := &frame{fn: fn, regs: make([]uint64, fn.NumRegs), retDst: retDst}
	copy(f.regs, args)
	if m.cfg.OnCall != nil {
		m.cfg.OnCall(fn.Name, args[:min(len(args), fn.NParams)])
	}
	if fn.FrameSize > 0 {
		m.objs = append(m.objs, &object{data: make([]byte, fn.FrameSize)})
		f.frameObj = uint32(len(m.objs) - 1)
	}
	t.stack = append(t.stack, f)
}

func (m *Machine) popFrame(t *thread) {
	f := t.stack[len(t.stack)-1]
	if f.frameObj != 0 {
		m.objs[f.frameObj].freed = true
	}
	t.stack = t.stack[:len(t.stack)-1]
}

// schedule runs threads in chunks until completion or failure.
func (m *Machine) schedule() {
	cur := 0
	for m.failure == nil {
		t := m.pickThread(cur)
		if t == nil {
			// No runnable thread: either all done, or deadlock.
			if m.allDone() {
				return
			}
			m.failGlobal(FailDeadlock, "no runnable threads")
			return
		}
		cur = t.id
		m.now++
		// A chunk packet is only needed when the running thread
		// changes; the decoder treats the stream as belonging to
		// the last announced thread.
		if t.id != m.lastTid {
			if m.cfg.Tracer != nil {
				m.cfg.Tracer.Chunk(t.id, m.now)
			}
			m.stats.Chunks++
			m.lastTid = t.id
		}
		// Jitter the quantum so distinct seeds produce distinct
		// coarse interleavings, as real timer variance would.
		quantum := m.cfg.ChunkSize
		if len(m.thrs) > 1 {
			quantum = m.cfg.ChunkSize/2 + int(m.nextRand()%uint64(m.cfg.ChunkSize))
		}
		m.runChunk(t, quantum)
		if m.stats.Instrs > m.cfg.MaxSteps {
			m.failGlobal(FailDeadlock, "step budget exhausted (hang)")
			return
		}
		cur++
	}
}

func (m *Machine) pickThread(start int) *thread {
	n := len(m.thrs)
	for i := 0; i < n; i++ {
		t := m.thrs[(start+i)%n]
		if t.state == thRunnable {
			return t
		}
	}
	return nil
}

func (m *Machine) allDone() bool {
	for _, t := range m.thrs {
		if t.state != thDone {
			return false
		}
	}
	return true
}

func (m *Machine) failGlobal(kind FailKind, msg string) {
	m.failure = &Failure{Kind: kind, Msg: msg, Func: "<scheduler>"}
}

// fail records a failure at the current instruction of thread t.
func (m *Machine) fail(t *thread, in *ir.Instr, kind FailKind, msg string) {
	f := t.stack[len(t.stack)-1]
	var stack []string
	for _, fr := range t.stack {
		stack = append(stack, fr.fn.Name)
	}
	m.failure = &Failure{
		Kind: kind, Msg: msg,
		Func: f.fn.Name, InstrID: in.ID, Line: in.Line,
		Tid: t.id, Stack: stack,
	}
	dump := &CoreDump{
		Regs:    append([]uint64(nil), f.regs...),
		Objects: make(map[uint32][]byte),
	}
	for id, o := range m.objs {
		if id == 0 || o.freed {
			continue
		}
		dump.Objects[uint32(id)] = append([]byte(nil), o.data...)
	}
	m.dump = dump
}

func (m *Machine) arg(f *frame, a ir.Arg) uint64 {
	if a.K == ir.ArgReg {
		return f.regs[a.Reg]
	}
	return a.Imm
}

func (m *Machine) setReg(t *thread, f *frame, in *ir.Instr, val uint64) {
	f.regs[in.Dst] = val
	if m.cfg.OnRegWrite != nil {
		m.cfg.OnRegWrite(f.fn.Name, in.ID, in.Dst, val)
	}
}

// checkAccess validates a memory access and returns the object.
func (m *Machine) checkAccess(t *thread, in *ir.Instr, addr uint64, size int) *object {
	obj, off := SplitAddr(addr)
	if obj == 0 || int(obj) >= len(m.objs) {
		m.fail(t, in, FailNullDeref, fmt.Sprintf("address %#x", addr))
		return nil
	}
	o := m.objs[obj]
	if o.freed {
		m.fail(t, in, FailUseAfterFree, fmt.Sprintf("object %d at offset %d", obj, off))
		return nil
	}
	if int(off)+size > len(o.data) {
		m.fail(t, in, FailOutOfBounds,
			fmt.Sprintf("object %d size %d, access [%d,%d)", obj, len(o.data), off, int(off)+size))
		return nil
	}
	return o
}

func loadLE(data []byte, off uint32, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(data[int(off)+i]) << (8 * i)
	}
	return v
}

func storeLE(data []byte, off uint32, n int, v uint64) {
	for i := 0; i < n; i++ {
		data[int(off)+i] = byte(v >> (8 * i))
	}
}

// runChunk interprets at least quantum instructions on thread t, but
// only ends the chunk immediately after a trace-visible event
// (conditional branch, return, indirect call, or yield) or when the
// thread blocks. Aligning preemption with trace events lets the
// shepherded symbolic executor reconstruct the exact switch points
// from the packet stream alone (§3.4).
func (m *Machine) runChunk(t *thread, quantum int) {
	defer m.pgd(t)
	for steps := 0; ; steps++ {
		if t.state != thRunnable || m.failure != nil {
			return
		}
		if len(t.stack) == 0 {
			t.state = thDone
			m.wakeJoiners(t.id)
			return
		}
		f := t.stack[len(t.stack)-1]
		blk := f.fn.Blocks[f.blk]
		in := &blk.Instrs[f.ii]
		m.stats.Instrs++
		m.stats.Cycles += opCycles(in.Op)
		op := in.Op
		t.sinceEvent++
		ok := m.step(t, f, in)
		if eventOp(op) {
			t.sinceEvent = 0
		}
		if !ok {
			return
		}
		if steps >= quantum {
			switch op {
			case ir.OpCondBr, ir.OpRet, ir.OpICall, ir.OpYield:
				return
			}
		}
	}
}

// eventOp reports whether the op emits a trace event when executed.
func eventOp(op ir.Op) bool {
	switch op {
	case ir.OpCondBr, ir.OpRet, ir.OpICall, ir.OpPtWrite:
		return true
	}
	return false
}

// pgd emits the pause marker for thread t at the end of its chunk.
func (m *Machine) pgd(t *thread) {
	if m.cfg.Tracer != nil && m.failure == nil {
		m.cfg.Tracer.PGD(t.sinceEvent)
	}
}

// step executes one instruction; it returns false when the chunk must
// end (block, thread switch, failure, or thread exit).
func (m *Machine) step(t *thread, f *frame, in *ir.Instr) bool {
	adv := true // advance f.ii after execution
	w := in.W
	nb := w.Bytes()
	msk := func(v uint64) uint64 {
		if w == ir.W64 {
			return v
		}
		return v & (1<<(8*uint(nb)) - 1)
	}
	switch in.Op {
	case ir.OpConst:
		m.setReg(t, f, in, msk(in.A.Imm))
	case ir.OpMov:
		m.setReg(t, f, in, msk(m.arg(f, in.A)))
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr,
		ir.OpEq, ir.OpNe, ir.OpUlt, ir.OpUle, ir.OpSlt, ir.OpSle:
		a, b := msk(m.arg(f, in.A)), msk(m.arg(f, in.B))
		v, ok := EvalBin(in.Op, w, a, b)
		if !ok {
			m.fail(t, in, FailDivByZero, "divisor is zero")
			return false
		}
		m.setReg(t, f, in, v)
	case ir.OpZext:
		m.setReg(t, f, in, msk(m.arg(f, in.A)))
	case ir.OpSext:
		m.setReg(t, f, in, uint64(signExtend(msk(m.arg(f, in.A)), w)))
	case ir.OpTrunc:
		m.setReg(t, f, in, msk(m.arg(f, in.A)))
	case ir.OpLoad:
		addr := m.arg(f, in.A)
		o := m.checkAccess(t, in, addr, nb)
		if o == nil {
			return false
		}
		_, off := SplitAddr(addr)
		m.setReg(t, f, in, loadLE(o.data, off, nb))
	case ir.OpStore:
		addr := m.arg(f, in.A)
		o := m.checkAccess(t, in, addr, nb)
		if o == nil {
			return false
		}
		_, off := SplitAddr(addr)
		storeLE(o.data, off, nb, msk(m.arg(f, in.B)))
	case ir.OpFrame:
		m.setReg(t, f, in, PackAddr(f.frameObj, uint32(in.A.Imm)))
	case ir.OpGlobal:
		m.setReg(t, f, in, PackAddr(GlobalObject(int(in.A.Imm)), 0))
	case ir.OpMalloc:
		size := m.arg(f, in.A)
		if size > 1<<28 {
			m.fail(t, in, FailOutOfBounds, fmt.Sprintf("malloc of %d bytes", size))
			return false
		}
		m.objs = append(m.objs, &object{data: make([]byte, size), heap: true})
		m.setReg(t, f, in, PackAddr(uint32(len(m.objs)-1), 0))
	case ir.OpFree:
		addr := m.arg(f, in.A)
		obj, off := SplitAddr(addr)
		if obj == 0 || int(obj) >= len(m.objs) || off != 0 {
			m.fail(t, in, FailBadFree, fmt.Sprintf("address %#x", addr))
			return false
		}
		o := m.objs[obj]
		if !o.heap {
			m.fail(t, in, FailBadFree, "free of non-heap object")
			return false
		}
		if o.freed {
			m.fail(t, in, FailDoubleFree, fmt.Sprintf("object %d", obj))
			return false
		}
		o.freed = true
	case ir.OpFuncAddr:
		m.setReg(t, f, in, uint64(m.mod.FuncIndex(in.Tag)))
	case ir.OpBr:
		f.blk, f.ii = in.Blk, 0
		adv = false
	case ir.OpCondBr:
		taken := m.arg(f, in.A) != 0
		m.stats.Branches++
		if m.cfg.Tracer != nil {
			m.cfg.Tracer.TNT(taken)
		}
		if taken {
			f.blk = in.Blk
		} else {
			f.blk = in.Blk2
		}
		f.ii = 0
		adv = false
	case ir.OpCall:
		callee := m.mod.FuncByName(in.Tag)
		m.doCall(t, f, in, callee)
		return m.failure == nil
	case ir.OpICall:
		idx := m.arg(f, in.A)
		m.stats.ICalls++
		if m.cfg.Tracer != nil {
			m.cfg.Tracer.TIP(idx)
		}
		if idx >= uint64(len(m.mod.Funcs)) {
			m.fail(t, in, FailNullDeref, fmt.Sprintf("indirect call to %#x", idx))
			return false
		}
		callee := m.mod.Funcs[idx]
		if len(in.Args) != callee.NParams {
			m.fail(t, in, FailAbort, fmt.Sprintf("indirect call arity: %s wants %d args", callee.Name, callee.NParams))
			return false
		}
		m.doCall(t, f, in, callee)
		return m.failure == nil
	case ir.OpRet:
		rv := m.arg(f, in.A)
		if m.cfg.OnReturn != nil {
			m.cfg.OnReturn(f.fn.Name, rv)
		}
		m.stats.Rets++
		if m.cfg.Tracer != nil {
			// Compressed-ret bit, as Intel PT emits when the
			// return matches the call stack.
			m.cfg.Tracer.TNT(true)
		}
		m.popFrame(t)
		if len(t.stack) == 0 {
			t.retVal = rv
			t.state = thDone
			m.wakeJoiners(t.id)
			return false
		}
		cf := t.stack[len(t.stack)-1]
		if f.retDst >= 0 {
			cf.regs[f.retDst] = rv
		}
		cf.ii++
		return true
	case ir.OpInput:
		var v uint64
		var ok bool
		if m.cfg.Input != nil {
			v, ok = m.cfg.Input.Next(in.Tag, w)
		}
		if !ok {
			m.fail(t, in, FailInputExhausted, fmt.Sprintf("stream %q", in.Tag))
			return false
		}
		m.stats.Inputs++
		m.stats.InputBits += int64(w)
		m.setReg(t, f, in, msk(v))
	case ir.OpAbort:
		m.fail(t, in, FailAbort, in.Tag)
		return false
	case ir.OpAssert:
		if m.arg(f, in.A) == 0 {
			m.fail(t, in, FailAssert, in.Tag)
			return false
		}
	case ir.OpOutput:
		m.out = append(m.out, msk(m.arg(f, in.A)))
	case ir.OpPtWrite:
		m.stats.PtWrites++
		if m.cfg.Tracer != nil {
			m.cfg.Tracer.PTW(in.ID, w, msk(m.arg(f, in.A)))
		}
	case ir.OpSpawn:
		callee := m.mod.FuncByName(in.Tag)
		nt := &thread{id: len(m.thrs)}
		m.thrs = append(m.thrs, nt)
		if len(m.thrs) > m.stats.Threads {
			m.stats.Threads = len(m.thrs)
		}
		args := make([]uint64, len(in.Args))
		for i, a := range in.Args {
			args[i] = m.arg(f, a)
		}
		m.pushFrame(nt, callee, args, -1)
		m.setReg(t, f, in, uint64(nt.id))
	case ir.OpJoin:
		tid := m.arg(f, in.A)
		if tid >= uint64(len(m.thrs)) {
			m.fail(t, in, FailAbort, fmt.Sprintf("join of unknown thread %d", tid))
			return false
		}
		if m.thrs[tid].state != thDone {
			t.state = thBlockedJoin
			t.waitTid = int(tid)
			return false // do not advance; retried after wake
		}
	case ir.OpLock:
		mu := m.arg(f, in.A)
		owner, held := m.mus[mu]
		if held && owner >= 0 {
			if owner == t.id {
				m.fail(t, in, FailDeadlock, "recursive lock")
				return false
			}
			t.state = thBlockedLock
			t.waitMu = mu
			return false
		}
		m.mus[mu] = t.id
	case ir.OpUnlock:
		mu := m.arg(f, in.A)
		if owner, held := m.mus[mu]; !held || owner != t.id {
			m.fail(t, in, FailAbort, "unlock of mutex not held")
			return false
		}
		m.mus[mu] = -1
		m.wakeLockers(mu)
	case ir.OpYield:
		f.ii++
		return false
	default:
		m.fail(t, in, FailAbort, fmt.Sprintf("bad opcode %s", in.Op))
		return false
	}
	if adv {
		f.ii++
	}
	return true
}

func (m *Machine) doCall(t *thread, f *frame, in *ir.Instr, callee *ir.Func) {
	if len(t.stack) >= m.cfg.MaxCallDepth {
		m.fail(t, in, FailStackOverflow, fmt.Sprintf("depth %d", len(t.stack)))
		return
	}
	args := make([]uint64, len(in.Args))
	for i, a := range in.Args {
		args[i] = m.arg(f, a)
	}
	m.pushFrame(t, callee, args, in.Dst)
}

func (m *Machine) wakeJoiners(tid int) {
	for _, o := range m.thrs {
		if o.state == thBlockedJoin && o.waitTid == tid {
			o.state = thRunnable
			// The join instruction re-executes and now passes.
		}
	}
}

func (m *Machine) wakeLockers(mu uint64) {
	for _, o := range m.thrs {
		if o.state == thBlockedLock && o.waitMu == mu {
			o.state = thRunnable
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func signExtend(v uint64, w ir.Width) int64 {
	switch w {
	case ir.W8:
		return int64(int8(v))
	case ir.W16:
		return int64(int16(v))
	case ir.W32:
		return int64(int32(v))
	}
	return int64(v)
}

// EvalBin computes a binary operation on masked operands; ok is
// false for division by zero. It is exported for reuse by analyses
// that re-execute instruction semantics (e.g. internal/rept).
func EvalBin(op ir.Op, w ir.Width, a, b uint64) (uint64, bool) {
	msk := uint64(1)<<(uint(w)) - 1
	if w == ir.W64 {
		msk = ^uint64(0)
	}
	bool2 := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case ir.OpAdd:
		return (a + b) & msk, true
	case ir.OpSub:
		return (a - b) & msk, true
	case ir.OpMul:
		return (a * b) & msk, true
	case ir.OpUDiv:
		if b == 0 {
			return 0, false
		}
		return (a / b) & msk, true
	case ir.OpURem:
		if b == 0 {
			return 0, false
		}
		return (a % b) & msk, true
	case ir.OpSDiv:
		if b == 0 {
			return 0, false
		}
		sa, sb := signExtend(a, w), signExtend(b, w)
		if sb == -1 && sa == -9223372036854775808 {
			return a & msk, true // MIN/-1 wraps, as x86 would trap and C leaves UB
		}
		return uint64(sa/sb) & msk, true
	case ir.OpSRem:
		if b == 0 {
			return 0, false
		}
		sa, sb := signExtend(a, w), signExtend(b, w)
		if sb == -1 {
			return 0, true
		}
		return uint64(sa%sb) & msk, true
	case ir.OpAnd:
		return a & b, true
	case ir.OpOr:
		return a | b, true
	case ir.OpXor:
		return a ^ b, true
	case ir.OpShl:
		if b >= uint64(w) {
			return 0, true
		}
		return (a << b) & msk, true
	case ir.OpLShr:
		if b >= uint64(w) {
			return 0, true
		}
		return a >> b, true
	case ir.OpAShr:
		sh := b
		if sh >= uint64(w) {
			sh = uint64(w) - 1
		}
		return uint64(signExtend(a, w)>>sh) & msk, true
	case ir.OpEq:
		return bool2(a == b), true
	case ir.OpNe:
		return bool2(a != b), true
	case ir.OpUlt:
		return bool2(a < b), true
	case ir.OpUle:
		return bool2(a <= b), true
	case ir.OpSlt:
		return bool2(signExtend(a, w) < signExtend(b, w)), true
	case ir.OpSle:
		return bool2(signExtend(a, w) <= signExtend(b, w)), true
	}
	return 0, true
}
