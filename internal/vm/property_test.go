package vm_test

import (
	"testing"
	"testing/quick"

	"execrecon/internal/ir"
	"execrecon/internal/minc"
	"execrecon/internal/vm"
)

func TestQuickAddrPacking(t *testing.T) {
	f := func(obj, off uint32) bool {
		o, f := vm.SplitAddr(vm.PackAddr(obj, off))
		return o == obj && f == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestScheduleDeterminism: with identical seed and inputs, even a racy
// multithreaded program produces bit-identical results — the property
// ER's trace replay and rr's schedule replay both rest on.
func TestScheduleDeterminism(t *testing.T) {
	src := `
int shared = 0;
func worker(int n) {
	for (int i = 0; i < n; i = i + 1) {
		int v = shared;
		yield();
		shared = v + 1;
	}
}
func main() int {
	long t1 = spawn worker(40);
	long t2 = spawn worker(40);
	join(t1);
	join(t2);
	output(shared);
	return 0;
}`
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) uint64 {
		res := vm.New(mod, vm.Config{Seed: seed, ChunkSize: 17}).Run("main")
		if res.Failure != nil {
			t.Fatalf("failure: %v", res.Failure)
		}
		return res.Output[0]
	}
	var distinct int
	base := run(1)
	for seed := int64(1); seed <= 8; seed++ {
		a, b := run(seed), run(seed)
		if a != b {
			t.Fatalf("seed %d nondeterministic: %d vs %d", seed, a, b)
		}
		if a != base {
			distinct++
		}
	}
	if distinct == 0 {
		t.Log("all seeds coincided (possible but worth noting)")
	}
}

// TestQuickArithAgainstGo drives the VM's binary operators with random
// operands and compares against native Go arithmetic at 32 bits.
func TestQuickArithAgainstGo(t *testing.T) {
	mod, err := minc.Compile("t", `
func main() int {
	int a = input32("v");
	int b = input32("v");
	output((uint)(a + b));
	output((uint)(a - b));
	output((uint)(a * b));
	output((uint)(a & b));
	output((uint)(a | b));
	output((uint)(a ^ b));
	output((uint)(a << (b & 31)));
	output((uint)((uint)a >> (b & 31)));
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b int32) bool {
		w := vm.NewWorkload().Add("v", uint64(uint32(a)), uint64(uint32(b)))
		res := vm.New(mod, vm.Config{Input: w}).Run("main")
		if res.Failure != nil {
			return false
		}
		sh := uint32(b) & 31
		want := []uint32{
			uint32(a + b), uint32(a - b), uint32(a * b),
			uint32(a & b), uint32(a | b), uint32(a ^ b),
			uint32(a) << sh, uint32(a) >> sh,
		}
		for i, wv := range want {
			if uint32(res.Output[i]) != wv {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestWorkloadCloneIsolation: clones rewind and do not share position
// state.
func TestWorkloadCloneIsolation(t *testing.T) {
	w := vm.NewWorkload().Add("a", 1, 2, 3)
	if v, _ := w.Next("a", 32); v != 1 {
		t.Fatal("first next")
	}
	c := w.Clone()
	if v, _ := c.Next("a", 32); v != 1 {
		t.Error("clone must rewind")
	}
	if v, _ := w.Next("a", 32); v != 2 {
		t.Error("original position disturbed by clone")
	}
	c.Streams["a"][0] = 99
	w.Reset()
	if v, _ := w.Next("a", 32); v != 1 {
		t.Error("clone shares backing storage")
	}
}

// TestTracedRunMatchesUntraced: attaching the tracer must not change
// program semantics.
func TestTracedRunMatchesUntraced(t *testing.T) {
	src := `
func main() int {
	int acc = 0;
	for (int i = 0; i < 200; i = i + 1) {
		if (i % 3 == 0) { acc = acc + i; } else { acc = acc ^ i; }
	}
	output(acc);
	return 0;
}`
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	plain := vm.New(mod, vm.Config{Seed: 4}).Run("main")
	traced := vm.New(mod, vm.Config{Seed: 4, Tracer: nullTracer{}}).Run("main")
	if plain.Output[0] != traced.Output[0] {
		t.Errorf("tracing changed semantics: %d vs %d", plain.Output[0], traced.Output[0])
	}
	if plain.Stats.Instrs != traced.Stats.Instrs {
		t.Errorf("tracing changed instruction count: %d vs %d",
			plain.Stats.Instrs, traced.Stats.Instrs)
	}
}

type nullTracer struct{}

func (nullTracer) TNT(bool)                    {}
func (nullTracer) TIP(uint64)                  {}
func (nullTracer) PTW(int32, ir.Width, uint64) {}
func (nullTracer) Chunk(int, uint64)           {}
func (nullTracer) PGD(uint64)                  {}
