// Package vm is the concrete interpreter for the ir register machine.
// It stands in for the x86_64 hardware of the paper's deployment: it
// executes programs, detects failures (aborts, assertion violations,
// NULL/out-of-bounds/use-after-free accesses, division by zero,
// deadlocks), counts cycles for the overhead experiments, and drives a
// PT-like tracer through hook points at conditional branches, indirect
// calls, returns, ptwrite instructions, and thread chunk switches.
//
// Multithreading follows the coarse-interleaving hypothesis setup of
// §3.4: threads run in chunks of instructions under a seeded
// round-robin scheduler, and every chunk boundary is visible to the
// tracer with a coarse timestamp, so the decoder can recover a partial
// order of cross-thread execution.
package vm

import (
	"fmt"

	"execrecon/internal/ir"
)

// FailKind classifies failures, mirroring the bug types of Table 1.
type FailKind uint8

// Failure kinds.
const (
	FailNone FailKind = iota
	FailAbort
	FailAssert
	FailNullDeref
	FailOutOfBounds
	FailUseAfterFree
	FailDivByZero
	FailDeadlock
	FailDoubleFree
	FailBadFree
	FailStackOverflow
	FailInputExhausted
)

var failNames = map[FailKind]string{
	FailNone: "none", FailAbort: "abort", FailAssert: "assertion failure",
	FailNullDeref: "null pointer dereference", FailOutOfBounds: "out-of-bounds access",
	FailUseAfterFree: "use after free", FailDivByZero: "division by zero",
	FailDeadlock: "deadlock", FailDoubleFree: "double free", FailBadFree: "bad free",
	FailStackOverflow: "stack overflow", FailInputExhausted: "input exhausted",
}

// String returns a human-readable failure kind.
func (k FailKind) String() string { return failNames[k] }

// Failure is a failure signature: the program counter (function +
// instruction ID) and call stack where the failure occurred, as in
// the paper's prototype, which "detects the reoccurrence of a failure
// based on matching the program counter and the call stack" (§4).
type Failure struct {
	Kind    FailKind
	Msg     string
	Func    string
	InstrID int32
	Line    int32
	Tid     int
	Stack   []string
}

// Error renders the failure.
func (f *Failure) Error() string {
	return fmt.Sprintf("%s at %s#%d (line %d, thread %d): %s",
		f.Kind, f.Func, f.InstrID, f.Line, f.Tid, f.Msg)
}

// SameSignature reports whether two failures have the same signature
// (kind, program counter, and call stack).
func (f *Failure) SameSignature(o *Failure) bool {
	if f == nil || o == nil {
		return f == o
	}
	if f.Kind != o.Kind || f.Func != o.Func || f.InstrID != o.InstrID {
		return false
	}
	if len(f.Stack) != len(o.Stack) {
		return false
	}
	for i := range f.Stack {
		if f.Stack[i] != o.Stack[i] {
			return false
		}
	}
	return true
}

// Tracer receives control-flow and data events, in execution order.
// The zero tracer (nil) disables tracing.
type Tracer interface {
	// TNT records a conditional-branch outcome or a compressed-ret
	// bit.
	TNT(taken bool)
	// TIP records an indirect transfer target (function index).
	TIP(target uint64)
	// PTW records a data value written by a ptwrite instruction.
	PTW(key int32, w ir.Width, val uint64)
	// Chunk records a scheduling chunk boundary: thread tid starts
	// running at coarse timestamp ts.
	Chunk(tid int, ts uint64)
	// PGD records that the running thread was descheduled after
	// count instructions since its last trace event.
	PGD(count uint64)
}

// InputSource supplies values for input instructions. Implementations
// must be deterministic for replay.
type InputSource interface {
	// Next returns the next value of stream tag, or false when the
	// stream is exhausted.
	Next(tag string, w ir.Width) (uint64, bool)
}

// Workload is the standard InputSource: per-tag FIFO queues. The
// generated test case of a successful reconstruction is exactly a
// Workload.
type Workload struct {
	Streams map[string][]uint64
	pos     map[string]int
}

// NewWorkload returns an empty workload.
func NewWorkload() *Workload {
	return &Workload{Streams: make(map[string][]uint64), pos: make(map[string]int)}
}

// Add appends values to stream tag.
func (w *Workload) Add(tag string, vals ...uint64) *Workload {
	w.Streams[tag] = append(w.Streams[tag], vals...)
	return w
}

// Next implements InputSource.
func (w *Workload) Next(tag string, _ ir.Width) (uint64, bool) {
	if w.pos == nil {
		w.pos = make(map[string]int)
	}
	p := w.pos[tag]
	s := w.Streams[tag]
	if p >= len(s) {
		return 0, false
	}
	w.pos[tag] = p + 1
	return s[p], true
}

// Reset rewinds all streams.
func (w *Workload) Reset() { w.pos = make(map[string]int) }

// Clone returns a rewound deep copy.
func (w *Workload) Clone() *Workload {
	c := NewWorkload()
	for k, v := range w.Streams {
		c.Streams[k] = append([]uint64(nil), v...)
	}
	return c
}

// TotalValues returns the number of input values across all streams.
func (w *Workload) TotalValues() int {
	n := 0
	for _, s := range w.Streams {
		n += len(s)
	}
	return n
}

// Config controls an execution.
type Config struct {
	// Input supplies input values; nil means all streams are empty.
	Input InputSource
	// Tracer receives trace events; nil disables tracing.
	Tracer Tracer
	// MaxSteps bounds execution (0 = default 200M); exceeding it
	// reports a deadlock/hang failure.
	MaxSteps int64
	// ChunkSize is the scheduling quantum in instructions
	// (default 1000).
	ChunkSize int
	// Seed perturbs chunk lengths to vary interleavings across
	// production runs.
	Seed int64
	// MaxCallDepth bounds recursion (default 512).
	MaxCallDepth int
	// OnRegWrite, if set, observes every register write: the
	// ground-truth hook used to score REPT-style recovery.
	OnRegWrite func(fn string, instrID int32, dst int, val uint64)
	// OnCall and OnReturn, if set, observe function entries and
	// exits with concrete argument/return values — the program
	// points at which the invariant engine (internal/invariants)
	// collects observations.
	OnCall   func(fn string, args []uint64)
	OnReturn func(fn string, ret uint64)
}

// Stats summarizes an execution for the efficiency experiments.
type Stats struct {
	Instrs    int64 // dynamic instruction count
	Cycles    int64 // modelled cycles (excluding tracing costs)
	Branches  int64 // conditional branches executed
	Rets      int64
	ICalls    int64
	PtWrites  int64
	Inputs    int64 // input instructions executed (syscall analog)
	InputBits int64 // total input payload bits
	Chunks    int64 // scheduling chunk switches
	Threads   int   // max live threads
}

// Result is the outcome of a run.
type Result struct {
	Failure *Failure // nil on clean exit
	Output  []uint64 // values emitted by output instructions
	Stats   Stats
	// Dump is the "core dump" captured at the failure: the failing
	// frame's registers and the final contents of every live memory
	// object. This is the post-mortem state REPT-style reverse
	// recovery starts from (internal/rept); ER itself never needs
	// it.
	Dump *CoreDump
}

// CoreDump is the post-failure machine state.
type CoreDump struct {
	Regs    []uint64          // failing frame registers
	Objects map[uint32][]byte // object id -> final bytes (live objects)
}

// cycle cost per op class, a coarse model of a modern OoO core.
func opCycles(op ir.Op) int64 {
	switch op {
	case ir.OpLoad, ir.OpStore:
		return 4
	case ir.OpMul:
		return 3
	case ir.OpUDiv, ir.OpURem, ir.OpSDiv, ir.OpSRem:
		return 20
	case ir.OpCall, ir.OpICall, ir.OpRet, ir.OpSpawn:
		return 8
	case ir.OpInput:
		return 300 // syscall-ish
	case ir.OpMalloc, ir.OpFree:
		return 50
	case ir.OpLock, ir.OpUnlock:
		return 15
	case ir.OpPtWrite:
		return 1 // the hardware ptwrite instruction is cheap
	default:
		return 1
	}
}
