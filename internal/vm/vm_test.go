package vm_test

import (
	"testing"

	"execrecon/internal/minc"
	"execrecon/internal/pt"
	"execrecon/internal/vm"
)

func run(t *testing.T, src string, cfg vm.Config) *vm.Result {
	t.Helper()
	mod, err := minc.Compile("t", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return vm.New(mod, cfg).Run("main")
}

func mustClean(t *testing.T, res *vm.Result) {
	t.Helper()
	if res.Failure != nil {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
}

func TestArithmeticEndToEnd(t *testing.T) {
	res := run(t, `
func main() int {
	int a = 7;
	int b = 3;
	output(a + b);   // 10
	output(a - b);   // 4
	output(a * b);   // 21
	output(a / b);   // 2
	output(a % b);   // 1
	output(a << b);  // 56
	output(a >> 1);  // 3
	output(-a + 8);  // 1
	output((a ^ b) & 5); // 4
	int neg = -5;
	output(neg / 2 + 100); // 98 (signed division truncates)
	uint u = (uint)neg;
	output(u / 2);   // 0x7ffffffd
	return 0;
}`, vm.Config{})
	mustClean(t, res)
	want := []uint64{10, 4, 21, 2, 1, 56, 3, 1, 4, 98, 0x7ffffffd}
	if len(res.Output) != len(want) {
		t.Fatalf("output: %v, want %v", res.Output, want)
	}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Errorf("output[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
}

func TestFib(t *testing.T) {
	res := run(t, `
func fib(int n) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() int { output(fib(15)); return 0; }`, vm.Config{})
	mustClean(t, res)
	if res.Output[0] != 610 {
		t.Errorf("fib(15) = %d, want 610", res.Output[0])
	}
}

func TestSortProgram(t *testing.T) {
	res := run(t, `
int arr[8];
func main() int {
	arr[0] = 5; arr[1] = 3; arr[2] = 8; arr[3] = 1;
	arr[4] = 9; arr[5] = 2; arr[6] = 7; arr[7] = 4;
	for (int i = 0; i < 8; i = i + 1) {
		for (int j = 0; j < 7 - i; j = j + 1) {
			if (arr[j] > arr[j + 1]) {
				int tmp = arr[j];
				arr[j] = arr[j + 1];
				arr[j + 1] = tmp;
			}
		}
	}
	for (int i = 0; i < 8; i = i + 1) { output(arr[i]); }
	return 0;
}`, vm.Config{})
	mustClean(t, res)
	want := []uint64{1, 2, 3, 4, 5, 7, 8, 9}
	for i := range want {
		if res.Output[i] != want[i] {
			t.Fatalf("sorted[%d] = %d, want %d", i, res.Output[i], want[i])
		}
	}
}

func TestWidthSemantics(t *testing.T) {
	res := run(t, `
func main() int {
	char c = (char)200;   // -56 as signed char
	int w = (int)c;       // sign-extends
	output((uint)w);      // 0xffffffc8
	uchar uc = (uchar)200;
	output((int)uc);      // 200
	short s = (short)0xFFFF;
	output((long)s + 1);  // 0
	return 0;
}`, vm.Config{})
	mustClean(t, res)
	if res.Output[0] != 0xffffffc8 {
		t.Errorf("signed char: %#x", res.Output[0])
	}
	if res.Output[1] != 200 {
		t.Errorf("unsigned char: %d", res.Output[1])
	}
	if res.Output[2] != 0 {
		t.Errorf("short sext: %d", res.Output[2])
	}
}

func TestInputsAndWorkload(t *testing.T) {
	w := vm.NewWorkload().Add("req", 10, 20).Add("side", 5)
	res := run(t, `
func main() int {
	int a = input32("req");
	int b = input32("req");
	int c = input32("side");
	output(a + b + c);
	return 0;
}`, vm.Config{Input: w})
	mustClean(t, res)
	if res.Output[0] != 35 {
		t.Errorf("sum = %d", res.Output[0])
	}
	if res.Stats.Inputs != 3 {
		t.Errorf("input count = %d", res.Stats.Inputs)
	}
}

func TestInputExhausted(t *testing.T) {
	res := run(t, `func main() int { return input32("x"); }`, vm.Config{})
	if res.Failure == nil || res.Failure.Kind != vm.FailInputExhausted {
		t.Fatalf("failure: %v", res.Failure)
	}
}

func TestFailureKinds(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind vm.FailKind
	}{
		{"abort", `func main() int { abort("boom"); return 0; }`, vm.FailAbort},
		{"assert", `func main() int { assert(1 == 2, "nope"); return 0; }`, vm.FailAssert},
		{"null", `func main() int { int *p = (int*)0; return *p; }`, vm.FailNullDeref},
		{"oob", `int a[4]; func main() int { return a[10]; }`, vm.FailOutOfBounds},
		{"uaf", `func main() int { char *p = malloc(8); free(p); return (int)p[0]; }`, vm.FailUseAfterFree},
		{"doublefree", `func main() int { char *p = malloc(8); free(p); free(p); return 0; }`, vm.FailDoubleFree},
		{"divzero", `func main() int { int z = 0; return 5 / z; }`, vm.FailDivByZero},
		{"badfree", `int g; func main() int { free(&g); return 0; }`, vm.FailBadFree},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := run(t, c.src, vm.Config{})
			if res.Failure == nil {
				t.Fatalf("expected %v failure, got clean exit", c.kind)
			}
			if res.Failure.Kind != c.kind {
				t.Fatalf("failure kind %v, want %v (%v)", res.Failure.Kind, c.kind, res.Failure)
			}
			if res.Failure.Func != "main" {
				t.Errorf("failure func %q", res.Failure.Func)
			}
		})
	}
}

func TestFailureSignature(t *testing.T) {
	src := `
func inner(int x) int { assert(x < 10, "too big"); return x; }
func outer(int x) int { return inner(x); }
func main() int { return outer(input32("n")); }`
	r1 := run(t, src, vm.Config{Input: vm.NewWorkload().Add("n", 50)})
	r2 := run(t, src, vm.Config{Input: vm.NewWorkload().Add("n", 99)})
	r3 := run(t, src, vm.Config{Input: vm.NewWorkload().Add("n", 5)})
	if r1.Failure == nil || r2.Failure == nil {
		t.Fatal("expected failures")
	}
	if r3.Failure != nil {
		t.Fatalf("unexpected failure: %v", r3.Failure)
	}
	if !r1.Failure.SameSignature(r2.Failure) {
		t.Error("same failure should have same signature")
	}
	if len(r1.Failure.Stack) != 3 {
		t.Errorf("stack: %v", r1.Failure.Stack)
	}
}

func TestThreadsSharedCounter(t *testing.T) {
	res := run(t, `
int shared = 0;
func worker(int n) {
	for (int i = 0; i < n; i = i + 1) {
		lock(1);
		shared = shared + 1;
		unlock(1);
	}
}
func main() int {
	long t1 = spawn worker(500);
	long t2 = spawn worker(500);
	join(t1);
	join(t2);
	output(shared);
	return 0;
}`, vm.Config{Seed: 7, ChunkSize: 37})
	mustClean(t, res)
	if res.Output[0] != 1000 {
		t.Errorf("shared = %d, want 1000", res.Output[0])
	}
	if res.Stats.Threads < 3 {
		t.Errorf("threads = %d", res.Stats.Threads)
	}
}

func TestDataRaceWithoutLock(t *testing.T) {
	// Unsynchronized increments under chunked scheduling can lose
	// updates only if a chunk boundary splits the load/store pair;
	// with tiny chunks across many iterations, final value varies by
	// seed. This exercises schedule-dependent behavior.
	src := `
int shared = 0;
func worker(int n) {
	for (int i = 0; i < n; i = i + 1) {
		int v = shared;
		yield();
		shared = v + 1;
	}
}
func main() int {
	long t1 = spawn worker(50);
	long t2 = spawn worker(50);
	join(t1);
	join(t2);
	output(shared);
	return 0;
}`
	res := run(t, src, vm.Config{Seed: 1, ChunkSize: 13})
	mustClean(t, res)
	if res.Output[0] == 100 {
		t.Logf("no lost update with this seed (value 100)")
	} else if res.Output[0] > 100 || res.Output[0] < 50 {
		t.Errorf("implausible final value %d", res.Output[0])
	}
}

func TestDeadlockDetection(t *testing.T) {
	res := run(t, `
func worker(int n) { lock(2); lock(1); unlock(1); unlock(2); }
func main() int {
	lock(1);
	long t1 = spawn worker(0);
	// Force the worker to grab lock 2 before we try it.
	for (int i = 0; i < 10000; i = i + 1) { yield(); }
	lock(2);
	unlock(2);
	unlock(1);
	join(t1);
	return 0;
}`, vm.Config{ChunkSize: 5})
	if res.Failure == nil || res.Failure.Kind != vm.FailDeadlock {
		t.Fatalf("expected deadlock, got %v", res.Failure)
	}
}

func TestHangDetection(t *testing.T) {
	res := run(t, `func main() int { while (1) { } return 0; }`, vm.Config{MaxSteps: 10000})
	if res.Failure == nil || res.Failure.Kind != vm.FailDeadlock {
		t.Fatalf("expected hang failure, got %v", res.Failure)
	}
}

func TestIndirectCall(t *testing.T) {
	res := run(t, `
func double(long x) long { return x * 2; }
func triple(long x) long { return x * 3; }
func main() int {
	long f = fnptr("double");
	long g = fnptr("triple");
	output(icall1(f, 21));
	output(icall1(g, 5));
	return 0;
}`, vm.Config{})
	mustClean(t, res)
	if res.Output[0] != 42 || res.Output[1] != 15 {
		t.Errorf("output: %v", res.Output)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	ring := pt.NewRing(1 << 20)
	enc := pt.NewEncoder(ring)
	mod, err := minc.Compile("t", `
func main() int {
	int acc = 0;
	for (int i = 0; i < 100; i = i + 1) {
		if (i % 3 == 0) { acc = acc + i; }
	}
	output(acc);
	return 0;
}`)
	if err != nil {
		t.Fatal(err)
	}
	res := vm.New(mod, vm.Config{Tracer: enc}).Run("main")
	mustClean(t, res)
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if tr.Truncated {
		t.Error("unexpected truncation")
	}
	// Count decoded TNT events: must equal branches + rets.
	var tnt, chunk int
	for _, ev := range tr.Events {
		switch ev.Kind {
		case pt.EvTNT:
			tnt++
		case pt.EvChunk:
			chunk++
		}
	}
	wantTNT := int(res.Stats.Branches + res.Stats.Rets)
	if tnt != wantTNT {
		t.Errorf("decoded %d TNT events, want %d", tnt, wantTNT)
	}
	if chunk != int(res.Stats.Chunks) {
		t.Errorf("decoded %d chunk events, want %d", chunk, res.Stats.Chunks)
	}
}

func TestRingOverflow(t *testing.T) {
	ring := pt.NewRing(8192)
	enc := pt.NewEncoder(ring)
	for i := 0; i < 200000; i++ {
		enc.TNT(i%2 == 0)
	}
	enc.Finish()
	tr, err := pt.Decode(ring)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !tr.Truncated {
		t.Error("expected truncated trace")
	}
	if tr.LostBytes == 0 {
		t.Error("expected lost bytes")
	}
	if len(tr.Events) == 0 {
		t.Error("expected surviving events after resync")
	}
}

func TestOnRegWriteHook(t *testing.T) {
	mod, err := minc.Compile("t", `func main() int { int a = 3; int b = a * 7; return b; }`)
	if err != nil {
		t.Fatal(err)
	}
	var writes int
	cfg := vm.Config{OnRegWrite: func(fn string, id int32, dst int, val uint64) { writes++ }}
	res := vm.New(mod, cfg).Run("main")
	mustClean(t, res)
	if writes == 0 {
		t.Error("no register writes observed")
	}
}

func TestStatsCycles(t *testing.T) {
	res := run(t, `func main() int { int x = 0; for (int i = 0; i < 1000; i = i + 1) { x = x + i; } return x; }`, vm.Config{})
	mustClean(t, res)
	if res.Stats.Instrs == 0 || res.Stats.Cycles < res.Stats.Instrs {
		t.Errorf("stats: %+v", res.Stats)
	}
	if res.Stats.Branches < 1000 {
		t.Errorf("branches: %d", res.Stats.Branches)
	}
}

func TestStackOverflow(t *testing.T) {
	res := run(t, `
func inf(int n) int { return inf(n + 1); }
func main() int { return inf(0); }`, vm.Config{})
	if res.Failure == nil || res.Failure.Kind != vm.FailStackOverflow {
		t.Fatalf("expected stack overflow, got %v", res.Failure)
	}
}

func TestFrameLocalsIsolatedPerCall(t *testing.T) {
	res := run(t, `
func f(int depth) int {
	int buf[4];
	buf[0] = depth;
	if (depth > 0) { f(depth - 1); }
	return buf[0];
}
func main() int { output(f(5)); return 0; }`, vm.Config{})
	mustClean(t, res)
	if res.Output[0] != 5 {
		t.Errorf("frame corruption: got %d, want 5", res.Output[0])
	}
}

func TestDanglingFrameDetected(t *testing.T) {
	// Returning a pointer to a dead frame and dereferencing it is a
	// use-after-free, as frame objects die with their call.
	res := run(t, `
func bad() long {
	int x[1];
	x[0] = 1;
	return (long)(&x[0]);
}
func main() int {
	long a = bad();
	int *p = (int*)a;
	return *p;
}`, vm.Config{})
	if res.Failure == nil || res.Failure.Kind != vm.FailUseAfterFree {
		t.Fatalf("expected UAF, got %v", res.Failure)
	}
}
